//! Per-rule fixture tests: each known-bad snippet under
//! `tests/fixtures/` must produce exactly the expected diagnostics when
//! presented at a path where its rule applies — and the renderers must
//! agree with the findings.
//!
//! The fixtures directory is skipped by the workspace walker, so these
//! deliberately-violating files never pollute `gaps lint` runs.

use gaps_analyzer::source::SourceFile;
use gaps_analyzer::{analyze_sources, load_manifests, render_json, render_text, Severity};
use std::path::Path;

/// Parse a fixture file as if it lived at `virtual_path` in the
/// workspace, and lint it with the real vendor manifests.
fn lint_fixture(fixture: &str, virtual_path: &str) -> Vec<(String, u32)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = std::fs::read_to_string(dir.join(fixture)).expect("fixture exists");
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let sources = vec![SourceFile::parse(virtual_path, &text)];
    let diags = analyze_sources(load_manifests(root), &sources);
    assert!(
        diags.iter().all(|d| d.severity == Severity::Error),
        "all analyzer rules report errors"
    );
    // Every finding carries a stable 16-hex-digit fingerprint.
    for d in &diags {
        assert_eq!(d.fingerprint.len(), 16, "{d:?}");
        assert!(d.fingerprint.chars().all(|c| c.is_ascii_hexdigit()));
    }
    // Both renderers must reflect the findings.
    let text_out = render_text(&diags);
    let json_out = render_json(&diags);
    for d in &diags {
        assert!(text_out.contains(d.rule), "text render names each rule");
        assert!(json_out.contains(d.rule), "json render names each rule");
    }
    assert_json_shape(&json_out, diags.len());
    diags
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

/// Minimal structural validation of the hand-rolled JSON renderer:
/// balanced delimiters outside strings and the advertised count.
fn assert_json_shape(json: &str, count: usize) {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut esc = false;
    for c in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced JSON: {json}");
    }
    assert_eq!(depth, 0, "unbalanced JSON: {json}");
    assert!(!in_str, "unterminated string in JSON: {json}");
    assert!(
        json.contains(&format!("\"count\": {count}")),
        "JSON count field must match: {json}"
    );
}

#[test]
fn vendor_subset_fixture() {
    let diags = lint_fixture("vendor_subset_bad.rs", "crates/engine/src/bad.rs");
    let lines: Vec<u32> = diags
        .iter()
        .filter(|(r, _)| r == "vendor-subset")
        .map(|&(_, l)| l)
        .collect();
    // `rand::distributions::Bernoulli` (line 2) and `rand::thread_rng`
    // (line 6); the manifest-covered uses on lines 3 and 7 stay silent.
    assert_eq!(lines, vec![2, 6], "{diags:?}");
    assert_eq!(diags.len(), 2, "no other rule fires: {diags:?}");
}

#[test]
fn panic_free_fixture() {
    let diags = lint_fixture("panic_free_bad.rs", "crates/core/src/bad.rs");
    let lines: Vec<u32> = diags
        .iter()
        .filter(|(r, _)| r == "panic-free")
        .map(|&(_, l)| l)
        .collect();
    // unwrap (3), expect (4), panic! (6), todo! (8); the justified allow
    // on 13–14 and the #[cfg(test)] unwrap stay silent.
    assert_eq!(lines, vec![3, 4, 6, 8], "{diags:?}");
    assert_eq!(diags.len(), 4, "no other rule fires: {diags:?}");
}

#[test]
fn concurrency_fixture() {
    let diags = lint_fixture("concurrency_bad.rs", "crates/engine/src/bad.rs");
    let got: Vec<(String, u32)> = diags
        .iter()
        .filter(|(r, _)| r == "concurrency")
        .cloned()
        .collect();
    // std::sync::Mutex import (2), thread::spawn (5), send under guard (10).
    let lines: Vec<u32> = got.iter().map(|&(_, l)| l).collect();
    assert_eq!(lines, vec![2, 5, 10], "{diags:?}");
    assert_eq!(diags.len(), 3, "no other rule fires: {diags:?}");
}

#[test]
fn concurrency_fixture_pool_module_may_spawn() {
    let diags = lint_fixture("concurrency_bad.rs", "crates/engine/src/pool.rs");
    let lines: Vec<u32> = diags.iter().map(|&(_, l)| l).collect();
    // The spawn on line 5 becomes legal in the pool module; the std
    // Mutex and the lock-across-send remain violations.
    assert_eq!(lines, vec![2, 10], "{diags:?}");
}

#[test]
fn unsafe_audit_fixture() {
    let diags = lint_fixture("unsafe_audit_bad.rs", "crates/core/src/bad.rs");
    let lines: Vec<u32> = diags
        .iter()
        .filter(|(r, _)| r == "unsafe-audit")
        .map(|&(_, l)| l)
        .collect();
    // The bare unsafe on line 3; the SAFETY-justified one on 8 passes.
    assert_eq!(lines, vec![3], "{diags:?}");
    assert_eq!(diags.len(), 1, "no other rule fires: {diags:?}");
}

#[test]
fn determinism_fixture() {
    let diags = lint_fixture("determinism_bad.rs", "crates/sim/src/bad.rs");
    let lines: Vec<u32> = diags
        .iter()
        .filter(|(r, _)| r == "determinism")
        .map(|&(_, l)| l)
        .collect();
    // The std::time::Instant import (2), Instant::now (5), and
    // SystemTime::now (10).
    assert_eq!(lines, vec![2, 5, 10], "{diags:?}");
    assert_eq!(diags.len(), 3, "no other rule fires: {diags:?}");
}

#[test]
fn determinism_fixture_is_exempt_in_bench() {
    let diags = lint_fixture("determinism_bad.rs", "crates/bench/src/perf.rs");
    assert!(
        diags.is_empty(),
        "bench crate may read the clock: {diags:?}"
    );
}

#[test]
fn determinism_fixture_is_exempt_in_the_serve_allowlist() {
    // The serve daemon is on the rule's per-crate wall-clock allowlist
    // (tickers, uptime); the same snippet stays a violation in any
    // sibling crate — `determinism_fixture` above pins `crates/sim`,
    // and the lookalike path here pins that the allowlist does not
    // bleed past its crate.
    let diags = lint_fixture("determinism_bad.rs", "crates/serve/src/ticker.rs");
    assert!(
        diags.is_empty(),
        "serve crate may read the clock: {diags:?}"
    );
    let diags = lint_fixture("determinism_bad.rs", "crates/setcover/src/serve_like.rs");
    let lines: Vec<u32> = diags
        .iter()
        .filter(|(r, _)| r == "determinism")
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(lines, vec![2, 5, 10], "{diags:?}");
}

#[test]
fn allow_directive_fixture() {
    let diags = lint_fixture("allow_directive_bad.rs", "crates/core/src/bad.rs");
    let got: Vec<(String, u32)> = diags
        .iter()
        .filter(|(r, _)| r == "allow-directive")
        .cloned()
        .collect();
    // Naked allow (3) and unknown rule id (5). The naked allow still
    // suppresses the expect on line 4 — the framework finding replaces
    // the rule finding rather than doubling it.
    let lines: Vec<u32> = got.iter().map(|&(_, l)| l).collect();
    assert_eq!(lines, vec![3, 5], "{diags:?}");
    assert_eq!(diags.len(), 2, "{diags:?}");
}

#[test]
fn lock_order_fixture() {
    let diags = lint_fixture("lock_order_bad.rs", "crates/engine/src/bad.rs");
    let got: Vec<(String, u32)> = diags
        .iter()
        .filter(|(r, _)| r == "lock-order")
        .cloned()
        .collect();
    // Both halves of the inversion are reported at their own acquisition
    // sites — `stats` under `queue` (14) and `queue` under `stats` (20)
    // — plus the guard held across the blocking call in `submit` (30).
    let lines: Vec<u32> = got.iter().map(|&(_, l)| l).collect();
    assert_eq!(lines, vec![14, 20, 30], "{diags:?}");
    assert_eq!(diags.len(), 3, "no other rule fires: {diags:?}");
}

#[test]
fn lock_order_fixture_is_exempt_in_tests() {
    let diags = lint_fixture("lock_order_bad.rs", "crates/engine/tests/bad.rs");
    assert!(
        diags.is_empty(),
        "test code may order locks freely: {diags:?}"
    );
}

#[test]
fn clean_snippet_stays_clean_everywhere() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let name = entry.expect("entry").file_name();
        let name = name.to_string_lossy().into_owned();
        // Every fixture, presented as a test file, may only trip the
        // location-independent rules (unsafe-audit, allow-directive,
        // concurrency).
        let diags = lint_fixture(&name, "crates/core/tests/fixture_copy.rs");
        assert!(
            diags
                .iter()
                .all(|(r, _)| r != "panic-free" && r != "determinism"),
            "{name}: location-scoped rules must not fire in tests: {diags:?}"
        );
    }
}

//! Vendor API manifests: the machine-readable `vendor/<crate>/API.txt`
//! files listing the documented API subset each offline stand-in
//! implements.
//!
//! The ROADMAP requires the eventual registry swap to be a mechanical
//! path -> version change; that holds exactly as long as the workspace
//! only names items the stubs document. The `vendor-subset` rule checks
//! every `rand::` / `proptest::` / `criterion::` / `parking_lot::` /
//! `crossbeam::` reference against these manifests.
//!
//! Format: one fully qualified path per line (`crossbeam::channel::
//! bounded`), `#` comments, blank lines ignored. An entry whitelists
//! itself and any longer path rooted at it (so `rand::rngs::StdRng`
//! covers `rand::rngs::StdRng::seed_from_u64`); an entry ending in `::*`
//! whitelists the matching glob import.

use std::collections::BTreeMap;

/// The vendor crates the workspace stubs, in stable order.
pub const VENDOR_CRATES: [&str; 5] = ["criterion", "crossbeam", "parking_lot", "proptest", "rand"];

/// One crate's documented-API manifest.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    /// Entries as `::`-separated segment vectors (first segment is the
    /// crate name). Glob entries keep their trailing `*` segment.
    entries: Vec<Vec<String>>,
}

impl Manifest {
    /// Parse manifest text (see the module docs for the format).
    pub fn parse(text: &str) -> Manifest {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| l.split("::").map(|s| s.trim().to_string()).collect())
            .collect();
        Manifest { entries }
    }

    /// Is the `::`-separated `path` (first segment = crate name) covered?
    ///
    /// Covered means: some entry equals a prefix of `path` (item or
    /// module granting its descendants), or `path` is itself a glob and
    /// an identical glob entry exists.
    pub fn covers(&self, path: &[&str]) -> bool {
        self.entries.iter().any(|e| {
            if e.last().is_some_and(|s| s == "*") {
                // Glob entry: matches the identical glob import, or any
                // concrete path strictly below the glob's prefix.
                let prefix = &e[..e.len() - 1];
                path.len() > prefix.len() && path[..prefix.len()].iter().eq(prefix.iter())
            } else {
                path.len() >= e.len() && path[..e.len()].iter().eq(e.iter())
            }
        })
    }

    /// Number of entries (for reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the manifest has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// All vendor manifests, keyed by crate name. Crates whose `API.txt`
/// was missing are absent — the vendor-subset rule reports that as a
/// violation on first use.
pub type Manifests = BTreeMap<&'static str, Manifest>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_blanks() {
        let m = Manifest::parse("# header\n\nrand::Rng\n  rand::rngs::StdRng  \n");
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn exact_and_descendant_coverage() {
        let m = Manifest::parse("rand::rngs::StdRng\nrand::Rng\n");
        assert!(m.covers(&["rand", "Rng"]));
        assert!(m.covers(&["rand", "rngs", "StdRng"]));
        assert!(m.covers(&["rand", "rngs", "StdRng", "seed_from_u64"]));
        assert!(!m.covers(&["rand", "rngs"]));
        assert!(!m.covers(&["rand", "thread_rng"]));
        assert!(!m.covers(&["rand", "RngX"]));
    }

    #[test]
    fn glob_entries() {
        let m = Manifest::parse("proptest::prelude::*\n");
        assert!(m.covers(&["proptest", "prelude", "*"]));
        assert!(m.covers(&["proptest", "prelude", "any"]));
        assert!(!m.covers(&["proptest", "prelude"]));
        assert!(!m.covers(&["proptest", "strategy", "*"]));
    }
}

//! Lint baselines: suppress known findings by fingerprint.
//!
//! A baseline file is JSON containing `"fingerprint": "<16 hex>"` pairs
//! anywhere in its structure — both the dedicated
//! `lint-baseline.json` layout written by [`render`] and a full
//! `gaps lint --format json` report parse, so a baseline can be
//! (re)captured by redirecting the lint output. `gaps lint --baseline
//! FILE` drops findings whose fingerprint appears in the file; because
//! fingerprints hash the flagged line's *content* (not its number),
//! baselined findings stay suppressed across unrelated edits, and any
//! change to the flagged line itself resurfaces the finding.

use crate::diagnostics::Diagnostic;
use std::collections::BTreeSet;

/// Extract every `"fingerprint": "<value>"` from `text`.
///
/// Deliberately lexical (the workspace has no serde): scans for the
/// quoted key, then reads the quoted value. Escapes never occur in
/// fingerprints (hex only), so no unescaping is needed.
pub fn parse(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let key = "\"fingerprint\"";
    let mut rest = text;
    while let Some(at) = rest.find(key) {
        rest = &rest[at + key.len()..];
        let value = rest
            .trim_start()
            .strip_prefix(':')
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.split('"').next());
        if let Some(v) = value {
            if !v.is_empty() && v.chars().all(|c| c.is_ascii_hexdigit()) {
                out.insert(v.to_string());
            }
        }
    }
    out
}

/// Split `diags` into (kept, suppressed-count) against a baseline.
pub fn apply(diags: Vec<Diagnostic>, baseline: &BTreeSet<String>) -> (Vec<Diagnostic>, usize) {
    let before = diags.len();
    let kept: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| !baseline.contains(&d.fingerprint))
        .collect();
    let suppressed = before - kept.len();
    (kept, suppressed)
}

/// Render the dedicated baseline layout for the given findings: one
/// entry per fingerprint with the rule and file kept as human context
/// (only the fingerprint is consulted when applying).
pub fn render(diags: &[Diagnostic]) -> String {
    let mut seen = BTreeSet::new();
    let mut out = String::from("{\n  \"fingerprints\": [");
    let mut first = true;
    for d in diags {
        if !seen.insert(&d.fingerprint) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"fingerprint\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\"}}",
            d.fingerprint, d.rule, d.file
        ));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;

    fn diag(fp: &str) -> Diagnostic {
        Diagnostic {
            file: "crates/core/src/edf.rs".into(),
            line: 3,
            rule: "panic-free",
            severity: Severity::Error,
            message: "x".into(),
            fingerprint: fp.into(),
        }
    }

    #[test]
    fn parses_dedicated_layout_and_full_reports() {
        let dedicated = render(&[diag("00ff00ff00ff00ff"), diag("1234123412341234")]);
        assert_eq!(
            parse(&dedicated),
            BTreeSet::from([
                "00ff00ff00ff00ff".to_string(),
                "1234123412341234".to_string()
            ])
        );
        let report = "{\n  \"diagnostics\": [\n    {\"file\": \"a.rs\", \"line\": 1, \
                      \"rule\": \"x\", \"severity\": \"error\", \
                      \"fingerprint\": \"deadbeefdeadbeef\", \"message\": \"m\"}\n  ]}\n";
        assert_eq!(
            parse(report),
            BTreeSet::from(["deadbeefdeadbeef".to_string()])
        );
    }

    #[test]
    fn empty_and_malformed_inputs_yield_empty_baselines() {
        assert!(parse("").is_empty());
        assert!(parse("{\"fingerprints\": []}").is_empty());
        assert!(parse("\"fingerprint\": \"not-hex!\"").is_empty());
        assert!(parse("\"fingerprint\": 12").is_empty());
    }

    #[test]
    fn apply_filters_by_fingerprint() {
        let baseline = BTreeSet::from(["aaaaaaaaaaaaaaaa".to_string()]);
        let (kept, suppressed) = apply(
            vec![diag("aaaaaaaaaaaaaaaa"), diag("bbbbbbbbbbbbbbbb")],
            &baseline,
        );
        assert_eq!(suppressed, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].fingerprint, "bbbbbbbbbbbbbbbb");
    }

    #[test]
    fn render_dedups_fingerprints() {
        let text = render(&[diag("cccccccccccccccc"), diag("cccccccccccccccc")]);
        assert_eq!(text.matches("cccccccccccccccc").count(), 1);
    }
}

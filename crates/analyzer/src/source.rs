//! A lexed source file plus the file-level facts every rule needs:
//! workspace-relative path, `#[cfg(test)]` / `#[test]` region map, and
//! `// analyzer: allow(rule)` escape-hatch directives.

use crate::lexer::{lex, Tok, TokKind};

/// An `// analyzer: allow(<rule>): <justification>` directive.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Rule id inside the parentheses.
    pub rule: String,
    /// Line of the directive comment itself.
    pub line: u32,
    /// Justification text after the closing paren (may be empty, which
    /// the framework reports as a violation in its own right).
    pub justification: String,
    /// Lines the directive suppresses: its own line, plus the next code
    /// line when the comment stands alone on its line.
    pub covers: Vec<u32>,
}

/// One workspace source file, lexed and annotated.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Token stream (comments included).
    pub toks: Vec<Tok>,
    /// Per-token flag: inside a `#[cfg(test)]` item or `#[test]` fn.
    pub in_test: Vec<bool>,
    /// Escape-hatch directives found in comments.
    pub allows: Vec<AllowDirective>,
    /// Raw source lines (1-based via [`SourceFile::line_text`]); kept so
    /// diagnostics can fingerprint the flagged line's content.
    pub lines: Vec<String>,
}

impl SourceFile {
    /// Lex and annotate `text` as the file at `rel_path` (relative to the
    /// workspace root; used for rule applicability decisions).
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let toks = lex(text);
        let in_test = mark_test_regions(&toks);
        let allows = collect_allows(&toks);
        SourceFile {
            rel_path: rel_path.replace('\\', "/"),
            toks,
            in_test,
            allows,
            lines: text.lines().map(str::to_string).collect(),
        }
    }

    /// Text of 1-based `line` (empty for out-of-range lines).
    pub fn line_text(&self, line: u32) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i as usize))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// First path component (e.g. `crates`, `vendor`, `src`, `tests`).
    fn first_component(&self) -> &str {
        self.rel_path.split('/').next().unwrap_or("")
    }

    /// True for files under `vendor/`.
    pub fn is_vendor(&self) -> bool {
        self.first_component() == "vendor"
    }

    /// True iff the file lives under the given `/`-separated prefix.
    pub fn under(&self, prefix: &str) -> bool {
        self.rel_path == prefix
            || self
                .rel_path
                .strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('/'))
    }

    /// True for files that are test/bench/example code by location:
    /// anything under a `tests/`, `benches/`, or `examples/` directory.
    pub fn is_test_file(&self) -> bool {
        self.rel_path
            .split('/')
            .any(|c| matches!(c, "tests" | "benches" | "examples"))
    }

    /// True iff token `i` is inside in-file test code (`#[cfg(test)]`
    /// module or `#[test]` function). File-level location is separate —
    /// see [`SourceFile::is_test_file`].
    pub fn token_in_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// True iff an allow directive for `rule` covers `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.covers.contains(&line))
    }
}

/// Mark tokens inside `#[cfg(test)]` items and `#[test]` functions.
///
/// Lexical approximation: after a test-marking attribute, skip any
/// further attributes, then mark up to the end of the item — the matching
/// `}` of its first brace, or the first `;` for brace-less items
/// (`#[cfg(test)] use …;`).
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut ci = 0;
    while ci < code.len() {
        if !is_attr_start(toks, &code, ci) || !attr_marks_test(toks, &code, ci) {
            ci += 1;
            continue;
        }
        // Skip this attribute and any stacked ones after it.
        let mut j = skip_attr(toks, &code, ci);
        while is_attr_start(toks, &code, j) {
            j = skip_attr(toks, &code, j);
        }
        // Find the item body: first `{` before any `;` ends the search at
        // its matching `}`; a `;` first means a brace-less item.
        let mut k = j;
        let mut brace_open = None;
        while k < code.len() {
            let t = &toks[code[k]];
            if t.is_punct('{') {
                brace_open = Some(k);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            k += 1;
        }
        let end = match brace_open {
            Some(open) => {
                let mut depth = 0usize;
                let mut m = open;
                loop {
                    if m >= code.len() {
                        break m;
                    }
                    let t = &toks[code[m]];
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break m;
                        }
                    }
                    m += 1;
                }
            }
            None => k.min(code.len() - 1),
        };
        // Mark every token (comments included) in the region's span.
        let start_tok = code[ci];
        let end_tok = code.get(end).copied().unwrap_or(toks.len() - 1);
        for flag in in_test.iter_mut().take(end_tok + 1).skip(start_tok) {
            *flag = true;
        }
        ci = end + 1;
    }
    in_test
}

/// Does code-token position `ci` start an attribute (`#[` or `#![`)?
fn is_attr_start(toks: &[Tok], code: &[usize], ci: usize) -> bool {
    let Some(&i) = code.get(ci) else { return false };
    if !toks[i].is_punct('#') {
        return false;
    }
    match code.get(ci + 1).map(|&j| &toks[j]) {
        Some(t) if t.is_punct('[') => true,
        Some(t) if t.is_punct('!') => code
            .get(ci + 2)
            .map(|&j| &toks[j])
            .is_some_and(|t| t.is_punct('[')),
        _ => false,
    }
}

/// Position just past the attribute starting at code position `ci`.
fn skip_attr(toks: &[Tok], code: &[usize], ci: usize) -> usize {
    let mut j = ci;
    // Advance to the opening `[`.
    while j < code.len() && !toks[code[j]].is_punct('[') {
        j += 1;
    }
    let mut depth = 0usize;
    while j < code.len() {
        let t = &toks[code[j]];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Does the attribute starting at code position `ci` mark test code?
/// Matches `#[test]` and `#[cfg(test)]`-style attributes (a `cfg` whose
/// argument mentions `test` without `not`).
fn attr_marks_test(toks: &[Tok], code: &[usize], ci: usize) -> bool {
    let end = skip_attr(toks, code, ci);
    let inner: Vec<&Tok> = code[ci..end]
        .iter()
        .map(|&i| &toks[i])
        .filter(|t| t.kind == TokKind::Ident)
        .collect();
    match inner.split_first() {
        Some((first, rest)) => {
            if first.text == "test" && rest.is_empty() {
                return true;
            }
            first.text == "cfg"
                && rest.iter().any(|t| t.text == "test")
                && !rest.iter().any(|t| t.text == "not")
        }
        None => false,
    }
}

/// Extract `analyzer: allow(rule): justification` directives from
/// comment tokens.
fn collect_allows(toks: &[Tok]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    // Line of the last non-comment token seen before each comment, to
    // decide whether a comment stands alone on its line.
    let mut last_code_line = 0u32;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            last_code_line = t.line;
            continue;
        }
        // A directive is a *plain* `//` comment that begins with
        // `analyzer:`. Doc comments (`///`, `//!`) and block comments
        // merely describe the syntax and never direct the analyzer.
        let body = match t.text.strip_prefix("//") {
            Some(b) if !b.starts_with('/') && !b.starts_with('!') => b,
            _ => continue,
        };
        let Some(rest) = body.trim_start().strip_prefix("analyzer:") else {
            continue;
        };
        let Some(rest) = rest.trim_start().strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let (rule, justification) = match rest.strip_prefix('(') {
            Some(body) => match body.split_once(')') {
                Some((rule, after)) => {
                    let j = after.trim_start();
                    let j = j.strip_prefix(':').unwrap_or("").trim();
                    (rule.trim().to_string(), j.to_string())
                }
                None => (body.trim().to_string(), String::new()),
            },
            None => (String::new(), String::new()),
        };
        let own_line = t.line != last_code_line;
        let mut covers = vec![t.line];
        if own_line {
            // Next non-comment token's line, if any.
            if let Some(next) = toks[i + 1..].iter().find(|n| !n.is_comment()) {
                covers.push(next.line);
            }
        }
        out.push(AllowDirective {
            rule,
            line: t.line,
            justification,
            covers,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_marked() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n",
        );
        let unwrap_at = f
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("tok");
        assert!(f.token_in_test(unwrap_at));
        let live2 = f
            .toks
            .iter()
            .position(|t| t.is_ident("live2"))
            .expect("tok");
        assert!(!f.token_in_test(live2));
    }

    #[test]
    fn test_fn_attribute_is_marked() {
        let f = SourceFile::parse(
            "x.rs",
            "#[test]\n#[ignore]\nfn check() { a.unwrap(); }\nfn live() {}\n",
        );
        let unwrap_at = f
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("tok");
        assert!(f.token_in_test(unwrap_at));
        let live = f.toks.iter().position(|t| t.is_ident("live")).expect("tok");
        assert!(!f.token_in_test(live));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let f = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn live() { a.unwrap(); }\n");
        let unwrap_at = f
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("tok");
        assert!(!f.token_in_test(unwrap_at));
    }

    #[test]
    fn braceless_cfg_test_item() {
        let f = SourceFile::parse("x.rs", "#[cfg(test)]\nuse crate::oracle;\nfn live() {}\n");
        let live = f.toks.iter().position(|t| t.is_ident("live")).expect("tok");
        assert!(!f.token_in_test(live));
        let oracle = f
            .toks
            .iter()
            .position(|t| t.is_ident("oracle"))
            .expect("tok");
        assert!(f.token_in_test(oracle));
    }

    #[test]
    fn allow_directive_same_line_and_own_line() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = x.unwrap(); // analyzer: allow(panic-free): index proven in bounds\n\
             // analyzer: allow(determinism): wall-clock is display-only\n\
             let t = now();\n",
        );
        assert!(f.allowed("panic-free", 1));
        assert!(f.allowed("determinism", 2));
        assert!(
            f.allowed("determinism", 3),
            "own-line comment covers next code line"
        );
        assert!(!f.allowed("panic-free", 3));
        assert_eq!(f.allows[0].justification, "index proven in bounds");
    }

    #[test]
    fn allow_directive_without_justification_is_recorded_empty() {
        let f = SourceFile::parse("x.rs", "// analyzer: allow(panic-free)\nlet a = 1;\n");
        assert_eq!(f.allows.len(), 1);
        assert!(f.allows[0].justification.is_empty());
    }

    #[test]
    fn path_classification() {
        let f = SourceFile::parse("vendor/rand/src/lib.rs", "");
        assert!(f.is_vendor());
        let f = SourceFile::parse("crates/core/src/edf.rs", "");
        assert!(f.under("crates/core/src"));
        assert!(!f.under("crates/core/src/edf"));
        assert!(!f.is_test_file());
        let f = SourceFile::parse("crates/core/tests/properties.rs", "");
        assert!(f.is_test_file());
        let f = SourceFile::parse("examples/quickstart.rs", "");
        assert!(f.is_test_file());
    }
}

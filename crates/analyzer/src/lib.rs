//! # gaps-analyzer
//!
//! A self-contained, lexer-based static-analysis pass that enforces the
//! gap-scheduling workspace's correctness invariants — the properties
//! that make "bit-exact optima from exact solvers under a concurrent
//! engine" true, but that no compiler check enforces:
//!
//! | rule id | invariant |
//! |---------|-----------|
//! | `vendor-subset` | vendored-crate references stay within `vendor/<crate>/API.txt` |
//! | `panic-free` | no unwrap/expect/panic!/todo! in `crates/core` solver code |
//! | `concurrency` | parking_lot-only locks, pool-only spawns, no lock across send/recv |
//! | `unsafe-audit` | every `unsafe` carries a `// SAFETY:` comment |
//! | `determinism` | no wall-clock reads in solver logic |
//! | `lock-order` | workspace lock-acquisition graph is acyclic; no guard held across a call into channel-blocking code |
//!
//! All but the last are per-file lexical checks; `lock-order` is
//! inter-procedural (per-function summaries propagated over the call
//! graph to a fixpoint — see [`rules::lock_order`]) and can render its
//! acquisition graph as Graphviz via `gaps lint --dot`.
//!
//! Run it as `gaps lint [--format json]`; it exits non-zero on findings
//! and is a blocking CI step. Individual sites can be exempted with
//! `// analyzer: allow(<rule>): <justification>` — the justification is
//! mandatory, and the framework itself reports malformed or unknown
//! directives (pseudo-rule `allow-directive`).
//!
//! There is no `syn` in the offline vendor tree, so everything is built
//! on the hand-rolled tokenizer in [`lexer`]; rules are lexical by
//! design (see [`rules`] for what that buys and costs).

pub mod baseline;
pub mod diagnostics;
pub mod lexer;
pub mod manifest;
mod parallel;
pub mod rules;
pub mod source;

pub use diagnostics::{render_json, render_text, Diagnostic, Severity};

use manifest::{Manifest, Manifests, VENDOR_CRATES};
use rules::Context;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Result of a lint run.
pub struct Analysis {
    /// Findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// True iff no error-severity finding was reported.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Directory names never descended into. `fixtures` holds the analyzer's
/// own deliberately-violating test inputs.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collect every `.rs` file under `root` (sorted, workspace-relative),
/// skipping [`SKIP_DIRS`].
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Load the vendor API manifests under `root`. Missing files simply
/// leave their crate absent — the vendor-subset rule reports that on
/// first use, so a deleted manifest cannot silently disable the check.
pub fn load_manifests(root: &Path) -> Manifests {
    let mut manifests = Manifests::new();
    for krate in VENDOR_CRATES {
        let path = root.join("vendor").join(krate).join("API.txt");
        if let Ok(text) = std::fs::read_to_string(&path) {
            manifests.insert(krate, Manifest::parse(&text));
        }
    }
    manifests
}

/// Lint already-parsed sources against the full rule catalog plus the
/// framework's allow-directive validation. Exposed for fixture tests;
/// most callers want [`analyze_workspace`].
pub fn analyze_sources(manifests: Manifests, sources: &[SourceFile]) -> Vec<Diagnostic> {
    let ctx = Context { manifests };
    let catalog = rules::catalog();
    let known = rules::known_rule_ids();
    let mut diags = Vec::new();
    for file in sources {
        for rule in &catalog {
            rule.check(file, &ctx, &mut diags);
        }
        // Framework check: allow directives must name a real rule and
        // carry a justification, otherwise the escape hatch rots.
        for allow in &file.allows {
            if !known.contains(&allow.rule.as_str()) {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: allow.line,
                    rule: "allow-directive",
                    severity: Severity::Error,
                    fingerprint: String::new(),
                    message: format!(
                        "allow directive names unknown rule `{}` (known: {})",
                        allow.rule,
                        known.join(", ")
                    ),
                });
            } else if allow.justification.is_empty() {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: allow.line,
                    rule: "allow-directive",
                    severity: Severity::Error,
                    fingerprint: String::new(),
                    message: format!(
                        "allow({}) requires a justification: \
                         `// analyzer: allow({}): <why this is sound>`",
                        allow.rule, allow.rule
                    ),
                });
            }
        }
    }
    // The inter-procedural pass sees every file at once.
    rules::lock_order::check(sources, &mut diags);
    // Stamp stable fingerprints (rule + path + flagged line content) so
    // findings can be baselined; see `diagnostics::fingerprint`.
    let by_path: std::collections::BTreeMap<&str, &SourceFile> =
        sources.iter().map(|s| (s.rel_path.as_str(), s)).collect();
    for d in &mut diags {
        let line_text = by_path
            .get(d.file.as_str())
            .map(|s| s.line_text(d.line))
            .unwrap_or("");
        d.fingerprint = diagnostics::fingerprint(d.rule, &d.file, line_text);
    }
    diagnostics::sort(&mut diags);
    diags
}

/// Read and lex every workspace `.rs` file under `root` (sorted by
/// workspace-relative path). Exposed so callers that need the parsed
/// sources themselves — `gaps lint --dot` renders the acquisition graph
/// from them — can share one scan with [`analyze_sources`].
///
/// Files are read and lexed on a scoped worker pool (see [`parallel`]);
/// the result order is the sorted path order regardless of worker
/// scheduling, so output stays deterministic.
pub fn load_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let files = collect_rs_files(root)?;
    let root = root.to_path_buf();
    let parsed = parallel::map_ordered(files, parallel::scan_threads(), |_, path| {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(SourceFile::parse(&rel, &text))
    });
    parsed.into_iter().collect()
}

/// Lint the whole workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let manifests = load_manifests(root);
    let sources = load_sources(root)?;
    Ok(Analysis {
        diagnostics: analyze_sources(manifests, &sources),
        files_scanned: sources.len(),
    })
}

/// One-line description of every rule, for `gaps lint --rules`.
pub fn rule_catalog_text() -> String {
    let mut out = String::new();
    for rule in rules::catalog() {
        out.push_str(&format!("{:<14} {}\n", rule.id(), rule.description()));
    }
    out.push_str(&format!(
        "{:<14} {}\n",
        rules::lock_order::ID,
        rules::lock_order::DESCRIPTION
    ));
    out.push_str(&format!(
        "{:<14} {}\n",
        "allow-directive",
        "framework check: allow directives must name a known rule and justify themselves"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> SourceFile {
        SourceFile::parse(path, text)
    }

    #[test]
    fn analyze_sources_runs_every_rule_and_sorts() {
        let files = vec![
            src("crates/core/src/b.rs", "fn f() { x.unwrap(); }\n"),
            src(
                "crates/core/src/a.rs",
                "fn f() { let t = std::time::Instant::now(); unsafe {} }\n",
            ),
        ];
        let diags = analyze_sources(Manifests::new(), &files);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["determinism", "unsafe-audit", "panic-free"]);
        assert!(diags[0].file < diags[2].file);
    }

    #[test]
    fn unknown_allow_rule_is_reported() {
        let files = vec![src(
            "crates/core/src/a.rs",
            "// analyzer: allow(sloppiness): because\nfn f() {}\n",
        )];
        let diags = analyze_sources(Manifests::new(), &files);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow-directive");
        assert!(diags[0].message.contains("unknown rule `sloppiness`"));
    }

    #[test]
    fn missing_justification_is_reported() {
        let files = vec![src(
            "crates/core/src/a.rs",
            "fn f() {\n    x.unwrap(); // analyzer: allow(panic-free)\n}\n",
        )];
        let diags = analyze_sources(Manifests::new(), &files);
        // The unwrap itself is suppressed, but the naked allow is the finding.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow-directive");
        assert!(diags[0].message.contains("requires a justification"));
    }

    #[test]
    fn clean_analysis_is_clean() {
        let files = vec![src("crates/core/src/a.rs", "pub fn f() -> u64 { 1 }\n")];
        let diags = analyze_sources(Manifests::new(), &files);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn rule_catalog_lists_all_six_rules() {
        let text = rule_catalog_text();
        for id in [
            "vendor-subset",
            "panic-free",
            "concurrency",
            "unsafe-audit",
            "determinism",
            "lock-order",
            "allow-directive",
        ] {
            assert!(text.contains(id), "missing {id} in:\n{text}");
        }
    }
}

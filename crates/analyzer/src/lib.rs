//! # gaps-analyzer
//!
//! A self-contained, lexer-based static-analysis pass that enforces the
//! gap-scheduling workspace's correctness invariants — the properties
//! that make "bit-exact optima from exact solvers under a concurrent
//! engine" true, but that no compiler check enforces:
//!
//! | rule id | invariant |
//! |---------|-----------|
//! | `vendor-subset` | vendored-crate references stay within `vendor/<crate>/API.txt` |
//! | `panic-free` | no unwrap/expect/panic!/todo! in `crates/core` solver code |
//! | `concurrency` | parking_lot-only locks, pool-only spawns, no lock across send/recv |
//! | `unsafe-audit` | every `unsafe` carries a `// SAFETY:` comment |
//! | `determinism` | no wall-clock reads in solver logic |
//!
//! Run it as `gaps lint [--format json]`; it exits non-zero on findings
//! and is a blocking CI step. Individual sites can be exempted with
//! `// analyzer: allow(<rule>): <justification>` — the justification is
//! mandatory, and the framework itself reports malformed or unknown
//! directives (pseudo-rule `allow-directive`).
//!
//! There is no `syn` in the offline vendor tree, so everything is built
//! on the hand-rolled tokenizer in [`lexer`]; rules are lexical by
//! design (see [`rules`] for what that buys and costs).

pub mod diagnostics;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod source;

pub use diagnostics::{render_json, render_text, Diagnostic, Severity};

use manifest::{Manifest, Manifests, VENDOR_CRATES};
use rules::Context;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Result of a lint run.
pub struct Analysis {
    /// Findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// True iff no error-severity finding was reported.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Directory names never descended into. `fixtures` holds the analyzer's
/// own deliberately-violating test inputs.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Find the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collect every `.rs` file under `root` (sorted, workspace-relative),
/// skipping [`SKIP_DIRS`].
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Load the vendor API manifests under `root`. Missing files simply
/// leave their crate absent — the vendor-subset rule reports that on
/// first use, so a deleted manifest cannot silently disable the check.
pub fn load_manifests(root: &Path) -> Manifests {
    let mut manifests = Manifests::new();
    for krate in VENDOR_CRATES {
        let path = root.join("vendor").join(krate).join("API.txt");
        if let Ok(text) = std::fs::read_to_string(&path) {
            manifests.insert(krate, Manifest::parse(&text));
        }
    }
    manifests
}

/// Lint already-parsed sources against the full rule catalog plus the
/// framework's allow-directive validation. Exposed for fixture tests;
/// most callers want [`analyze_workspace`].
pub fn analyze_sources(manifests: Manifests, sources: &[SourceFile]) -> Vec<Diagnostic> {
    let ctx = Context { manifests };
    let catalog = rules::catalog();
    let known = rules::known_rule_ids();
    let mut diags = Vec::new();
    for file in sources {
        for rule in &catalog {
            rule.check(file, &ctx, &mut diags);
        }
        // Framework check: allow directives must name a real rule and
        // carry a justification, otherwise the escape hatch rots.
        for allow in &file.allows {
            if !known.contains(&allow.rule.as_str()) {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: allow.line,
                    rule: "allow-directive",
                    severity: Severity::Error,
                    message: format!(
                        "allow directive names unknown rule `{}` (known: {})",
                        allow.rule,
                        known.join(", ")
                    ),
                });
            } else if allow.justification.is_empty() {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: allow.line,
                    rule: "allow-directive",
                    severity: Severity::Error,
                    message: format!(
                        "allow({}) requires a justification: \
                         `// analyzer: allow({}): <why this is sound>`",
                        allow.rule, allow.rule
                    ),
                });
            }
        }
    }
    diagnostics::sort(&mut diags);
    diags
}

/// Lint the whole workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let manifests = load_manifests(root);
    let files = collect_rs_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push(SourceFile::parse(&rel, &text));
    }
    Ok(Analysis {
        diagnostics: analyze_sources(manifests, &sources),
        files_scanned: sources.len(),
    })
}

/// One-line description of every rule, for `gaps lint --rules`.
pub fn rule_catalog_text() -> String {
    let mut out = String::new();
    for rule in rules::catalog() {
        out.push_str(&format!("{:<14} {}\n", rule.id(), rule.description()));
    }
    out.push_str(&format!(
        "{:<14} {}\n",
        "allow-directive",
        "framework check: allow directives must name a known rule and justify themselves"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> SourceFile {
        SourceFile::parse(path, text)
    }

    #[test]
    fn analyze_sources_runs_every_rule_and_sorts() {
        let files = vec![
            src("crates/core/src/b.rs", "fn f() { x.unwrap(); }\n"),
            src(
                "crates/core/src/a.rs",
                "fn f() { let t = std::time::Instant::now(); unsafe {} }\n",
            ),
        ];
        let diags = analyze_sources(Manifests::new(), &files);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["determinism", "unsafe-audit", "panic-free"]);
        assert!(diags[0].file < diags[2].file);
    }

    #[test]
    fn unknown_allow_rule_is_reported() {
        let files = vec![src(
            "crates/core/src/a.rs",
            "// analyzer: allow(sloppiness): because\nfn f() {}\n",
        )];
        let diags = analyze_sources(Manifests::new(), &files);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow-directive");
        assert!(diags[0].message.contains("unknown rule `sloppiness`"));
    }

    #[test]
    fn missing_justification_is_reported() {
        let files = vec![src(
            "crates/core/src/a.rs",
            "fn f() {\n    x.unwrap(); // analyzer: allow(panic-free)\n}\n",
        )];
        let diags = analyze_sources(Manifests::new(), &files);
        // The unwrap itself is suppressed, but the naked allow is the finding.
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "allow-directive");
        assert!(diags[0].message.contains("requires a justification"));
    }

    #[test]
    fn clean_analysis_is_clean() {
        let files = vec![src("crates/core/src/a.rs", "pub fn f() -> u64 { 1 }\n")];
        let diags = analyze_sources(Manifests::new(), &files);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn rule_catalog_lists_all_five_rules() {
        let text = rule_catalog_text();
        for id in [
            "vendor-subset",
            "panic-free",
            "concurrency",
            "unsafe-audit",
            "determinism",
            "allow-directive",
        ] {
            assert!(text.contains(id), "missing {id} in:\n{text}");
        }
    }
}

//! Rule `panic-free`: no `.unwrap()` / `.expect(…)` / `panic!` / `todo!`
//! / `unimplemented!` in non-test code of the `crates/core` solver
//! modules.
//!
//! The solvers are the engine's hot path: a panic there takes down a
//! worker thread and, through the pool's re-raise semantics, the whole
//! batch. Invariant-backed panics are still expressible — convert the
//! site to an `expect` whose message states the invariant and annotate
//! it with `// analyzer: allow(panic-free): <why the invariant holds>`.

use super::{CodeView, Context, Rule};
use crate::diagnostics::{Diagnostic, Severity};
use crate::source::SourceFile;

pub(crate) struct PanicFree;

/// Macro heads that abort the thread.
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
/// Panicking `Option`/`Result` adapters (exact idents; `unwrap_or*` and
/// friends do not match).
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

impl Rule for PanicFree {
    fn id(&self) -> &'static str {
        "panic-free"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/todo! in non-test code of the crates/core \
         solver modules (escape hatch: // analyzer: allow(panic-free): <reason>)"
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !file.under("crates/core/src") || file.is_test_file() {
            return;
        }
        let code = CodeView::new(file);
        for i in 0..code.len() {
            if code.in_test(i) {
                continue;
            }
            let t = code.tok(i);
            if t.kind != crate::lexer::TokKind::Ident {
                continue;
            }
            let finding = if PANIC_METHODS.contains(&t.text.as_str())
                && i >= 1
                && code.tok(i - 1).is_punct('.')
            {
                Some(format!(
                    "`.{}()` in solver hot-path code; return an error/Option or document \
                     the invariant with an expect + `// analyzer: allow(panic-free): …`",
                    t.text
                ))
            } else if PANIC_MACROS.contains(&t.text.as_str())
                && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                Some(format!(
                    "`{}!` in solver hot-path code; make the state unrepresentable or \
                     annotate with `// analyzer: allow(panic-free): …`",
                    t.text
                ))
            } else {
                None
            };
            if let Some(message) = finding {
                if !file.allowed(self.id(), t.line) {
                    out.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: t.line,
                        rule: self.id(),
                        severity: Severity::Error,
                        fingerprint: String::new(),
                        message,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifests;

    fn diags(path: &str, src: &str) -> Vec<(u32, String)> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        PanicFree.check(
            &f,
            &Context {
                manifests: Manifests::new(),
            },
            &mut out,
        );
        out.into_iter().map(|d| (d.line, d.message)).collect()
    }

    #[test]
    fn unwrap_and_expect_in_core_flagged() {
        let d = diags(
            "crates/core/src/edf.rs",
            "fn f() {\n    let a = x.unwrap();\n    let b = y.expect(\"msg\");\n}\n",
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, 2);
        assert_eq!(d[1].0, 3);
    }

    #[test]
    fn panic_macros_flagged_but_asserts_are_not() {
        let d = diags(
            "crates/core/src/edf.rs",
            "fn f() {\n    assert!(ok);\n    panic!(\"boom\");\n    todo!();\n    unimplemented!();\n}\n",
        );
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn unwrap_or_variants_pass() {
        let d = diags(
            "crates/core/src/edf.rs",
            "fn f() { let a = x.unwrap_or(0); let b = y.unwrap_or_else(|| 1); let c = z.unwrap_or_default(); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_and_other_crates_pass() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(diags("crates/engine/src/cache.rs", src).is_empty());
        assert!(diags("crates/core/tests/properties.rs", src).is_empty());
        let in_mod = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }\n";
        assert!(diags("crates/core/src/edf.rs", in_mod).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let d = diags(
            "crates/core/src/edf.rs",
            "fn f() { let s = \"never panic! here\"; } // .unwrap() would be bad\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let d = diags(
            "crates/core/src/edf.rs",
            "fn f() {\n    // analyzer: allow(panic-free): index produced by the loop above\n    let a = xs.get(i).expect(\"loop bound\");\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn attribute_expect_is_not_a_method_call() {
        let d = diags(
            "crates/core/src/edf.rs",
            "#[expect(dead_code)]\nfn f() {}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}

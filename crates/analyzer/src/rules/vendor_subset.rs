//! Rule `vendor-subset`: every item the workspace references from a
//! vendored stand-in crate (`rand`, `proptest`, `criterion`,
//! `parking_lot`, `crossbeam`) must appear in that stub's documented-API
//! manifest (`vendor/<crate>/API.txt`).
//!
//! This is what keeps the ROADMAP's "registry swap is a mechanical
//! path -> version change" promise true: the manifests list the real
//! crates' API surface that the stubs faithfully implement, so code that
//! lints clean compiles unchanged against the registry versions.

use super::{qualified_paths, CodeView, Context, Rule};
use crate::diagnostics::{Diagnostic, Severity};
use crate::manifest::VENDOR_CRATES;
use crate::source::SourceFile;

pub(crate) struct VendorSubset;

impl Rule for VendorSubset {
    fn id(&self) -> &'static str {
        "vendor-subset"
    }

    fn description(&self) -> &'static str {
        "references to vendored crates must stay within the documented API \
         manifest (vendor/<crate>/API.txt), keeping the registry swap mechanical"
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        // The stubs may reference themselves freely.
        if file.is_vendor() {
            return;
        }
        let code = CodeView::new(file);
        for path in qualified_paths(&code) {
            let Some(&krate) = VENDOR_CRATES
                .iter()
                .find(|&&c| path.segments.first().is_some_and(|s| s == c))
            else {
                continue;
            };
            if file.allowed(self.id(), path.line) {
                continue;
            }
            let rendered = path.segments.join("::");
            match ctx.manifests.get(krate) {
                None => out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: path.line,
                    rule: self.id(),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                    message: format!(
                        "`{rendered}` references vendored crate `{krate}` which has no \
                         API manifest; add vendor/{krate}/API.txt"
                    ),
                }),
                Some(m) => {
                    let segs: Vec<&str> = path.segments.iter().map(String::as_str).collect();
                    if !m.covers(&segs) {
                        let kind = if path.from_use { "import" } else { "reference" };
                        out.push(Diagnostic {
                            file: file.rel_path.clone(),
                            line: path.line,
                            rule: self.id(),
                            severity: Severity::Error,
                            fingerprint: String::new(),
                            message: format!(
                                "{kind} `{rendered}` is outside the documented API subset of \
                                 the `{krate}` stub; extend the stub and vendor/{krate}/API.txt \
                                 together, or stay within the documented surface"
                            ),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{Manifest, Manifests};

    fn ctx() -> Context {
        let mut manifests = Manifests::new();
        manifests.insert(
            "rand",
            Manifest::parse("rand::Rng\nrand::SeedableRng\nrand::rngs::StdRng\n"),
        );
        manifests.insert("proptest", Manifest::parse("proptest::prelude::*\n"));
        Context { manifests }
    }

    fn diags(src: &str) -> Vec<String> {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        VendorSubset.check(&f, &ctx(), &mut out);
        out.iter()
            .map(|d| format!("{}:{}", d.line, d.message))
            .collect()
    }

    #[test]
    fn documented_imports_pass() {
        assert!(diags("use rand::{Rng, SeedableRng};\nuse rand::rngs::StdRng;\n").is_empty());
        assert!(diags("use proptest::prelude::*;\n").is_empty());
        assert!(diags("let r = rand::rngs::StdRng::seed_from_u64(1);\n").is_empty());
    }

    #[test]
    fn undocumented_import_is_flagged() {
        let d = diags("use rand::thread_rng;\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("rand::thread_rng"), "{d:?}");
    }

    #[test]
    fn undocumented_inline_reference_is_flagged() {
        let d = diags("fn f() { let x = rand::random::<u8>(); }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("rand::random"));
    }

    #[test]
    fn missing_manifest_is_flagged() {
        let d = diags("use crossbeam::channel;\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("no API manifest"), "{d:?}");
    }

    #[test]
    fn non_vendor_paths_ignored() {
        assert!(diags("use std::collections::HashMap;\nuse crate::rand_helper::x;\n").is_empty());
    }

    #[test]
    fn vendor_files_are_exempt() {
        let f = SourceFile::parse("vendor/rand/src/lib.rs", "use rand::internal::Secret;");
        let mut out = Vec::new();
        VendorSubset.check(&f, &ctx(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let d = diags(
            "// analyzer: allow(vendor-subset): migration shim, tracked in ROADMAP\nuse rand::thread_rng;\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}

//! Rule `unsafe-audit`: every `unsafe` keyword — block, fn, impl, or
//! trait — must be justified by a `// SAFETY:` comment on the same line
//! or within the three lines above it.
//!
//! The workspace is currently 100% safe code; this rule keeps the first
//! `unsafe` that ever lands (say, a SIMD kernel in the DP hot path) from
//! arriving without its proof obligation written down. It applies to
//! `vendor/` and test code too: an unsound stub or test helper is no
//! less unsound.

use super::{CodeView, Context, Rule};
use crate::diagnostics::{Diagnostic, Severity};
use crate::source::SourceFile;

pub(crate) struct UnsafeAudit;

/// How many lines above an `unsafe` a SAFETY comment may sit (the
/// comment may be multi-line; its *last* line must be in range).
const SAFETY_WINDOW: u32 = 3;

impl Rule for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe-audit"
    }

    fn description(&self) -> &'static str {
        "every `unsafe` block/fn/impl must be preceded by a `// SAFETY:` comment"
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        // Lines on which a SAFETY comment ends (block comments may span
        // lines; approximate their end by start line + newline count).
        let safety_lines: Vec<u32> = file
            .toks
            .iter()
            .filter(|t| t.is_comment() && t.text.contains("SAFETY:"))
            .map(|t| t.line + t.text.matches('\n').count() as u32)
            .collect();
        let code = CodeView::new(file);
        for i in 0..code.len() {
            let t = code.tok(i);
            if !t.is_ident("unsafe") {
                continue;
            }
            let justified = safety_lines
                .iter()
                .any(|&l| l <= t.line && l + SAFETY_WINDOW >= t.line);
            if !justified && !file.allowed(self.id(), t.line) {
                out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: t.line,
                    rule: self.id(),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                    message: "`unsafe` without a `// SAFETY:` comment on the same line or \
                              within the 3 lines above; state the invariant that makes \
                              this sound"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifests;

    fn diags(path: &str, src: &str) -> Vec<u32> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        UnsafeAudit.check(
            &f,
            &Context {
                manifests: Manifests::new(),
            },
            &mut out,
        );
        out.into_iter().map(|d| d.line).collect()
    }

    #[test]
    fn bare_unsafe_block_flagged() {
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() {\n    unsafe { ptr.read() }\n}\n",
        );
        assert_eq!(d, vec![2]);
    }

    #[test]
    fn safety_comment_above_passes() {
        let d = diags(
            "crates/core/src/x.rs",
            "fn f() {\n    // SAFETY: ptr is non-null, aligned, and owned by this slab.\n    unsafe { ptr.read() }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn multi_line_safety_comment_passes() {
        let d = diags(
            "crates/core/src/x.rs",
            "// SAFETY: the index was bounds-checked by the caller and\n// the slab never shrinks while a guard is live.\nunsafe fn read_at(i: usize) {}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn safety_too_far_above_is_flagged() {
        let d = diags(
            "crates/core/src/x.rs",
            "// SAFETY: stale note\n\n\n\n\nunsafe fn f() {}\n",
        );
        assert_eq!(d, vec![6]);
    }

    #[test]
    fn unsafe_impl_needs_safety_too() {
        let d = diags("crates/engine/src/x.rs", "unsafe impl Send for Pool {}\n");
        assert_eq!(d, vec![1]);
        let ok = diags(
            "crates/engine/src/x.rs",
            "// SAFETY: all fields are Send; the raw pointer is never aliased.\nunsafe impl Send for Pool {}\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn vendor_and_test_code_are_covered() {
        assert_eq!(
            diags("vendor/rand/src/lib.rs", "fn f() { unsafe {} }\n"),
            vec![1]
        );
        assert_eq!(
            diags(
                "crates/core/src/x.rs",
                "#[cfg(test)]\nmod tests { fn f() { unsafe {} } }\n"
            ),
            vec![2]
        );
    }

    #[test]
    fn the_word_unsafe_in_comments_and_strings_passes() {
        let d = diags(
            "crates/core/src/x.rs",
            "// this API is unsafe to misuse in a colloquial sense\nfn f() { let s = \"unsafe\"; }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}

//! Rule `determinism`: no wall-clock reads (`Instant::now`,
//! `SystemTime::now`) in solver logic.
//!
//! The engine's contract is bit-identical output for any `--threads`
//! value, and the differential/golden suites replay instances expecting
//! stable results; a solver that branches on elapsed time breaks both.
//! Timing belongs to `crates/bench` (measurement is its job) and to the
//! engine's metrics surface (`crates/engine/src/lib.rs` latency
//! recording, `metrics.rs`) — those locations are exempt, as are tests,
//! benches, and examples.
//!
//! Whole crates whose *purpose* is wall-clock-driven operation are
//! exempted via [`WALL_CLOCK_CRATES`] rather than per-line `allow`
//! directives: `crates/serve` is a daemon (report tickers, latency
//! stamps, drain timers), so every clock read there would need a
//! directive saying the same thing. The engine's elastic worker pool
//! (`crates/engine/src/pool.rs`) earns the same exemption: its grown
//! workers retire on an idle-shrink timer (`recv_timeout` against an
//! `Instant` patience deadline), which is honest wall-clock behaviour —
//! pool *size* may vary with timing, but job results and their ordering
//! never do (`map_ordered` reassembles by index). An explicit allowlist
//! keeps the policy reviewable in one place; the fixture suite pins
//! that the rule still fires everywhere else.

use super::{qualified_paths, CodeView, Context, Rule};
use crate::diagnostics::{Diagnostic, Severity};
use crate::source::SourceFile;

pub(crate) struct Determinism;

/// Files whose whole purpose is timing: the bench crate, and the engine
/// metrics surface (request latency capture + report rendering).
const EXEMPT_PREFIXES: [&str; 3] = [
    "crates/bench",
    "crates/engine/src/lib.rs",
    "crates/engine/src/metrics.rs",
];

/// Crates (and whole files) allowed to read the wall clock wholesale.
/// Solver results must never depend on time, but a long-running daemon
/// *is* a clock consumer (tickers, uptime, request latency), and the
/// elastic pool's idle-shrink timer exists to measure real idleness.
/// Listing them here is deliberate policy (reviewed in one place),
/// unlike scattered inline `allow` directives which this rule's
/// exemptions do not need.
const WALL_CLOCK_CRATES: [&str; 2] = ["crates/serve", "crates/engine/src/pool.rs"];

const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no Instant::now/SystemTime::now in solver logic (timing lives in \
         crates/bench, the engine metrics surface, and the wall-clock \
         allowlist: crates/serve, the elastic pool's idle-shrink timer)"
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.is_vendor()
            || file.is_test_file()
            || EXEMPT_PREFIXES.iter().any(|p| file.under(p))
            || WALL_CLOCK_CRATES.iter().any(|p| file.under(p))
        {
            return;
        }
        let code = CodeView::new(file);
        for path in qualified_paths(&code) {
            if path.in_test {
                continue;
            }
            let segs: Vec<&str> = path.segments.iter().map(String::as_str).collect();
            // `Instant::now` / `std::time::Instant::now` chains, and
            // `use std::time::{Instant, …}` imports.
            let clock_now = segs
                .windows(2)
                .any(|w| CLOCK_TYPES.contains(&w[0]) && w[1] == "now");
            let clock_import = path.from_use
                && segs.first() == Some(&"std")
                && segs.get(1) == Some(&"time")
                && segs.iter().any(|s| CLOCK_TYPES.contains(s));
            if (clock_now || clock_import) && !file.allowed(self.id(), path.line) {
                out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: path.line,
                    rule: self.id(),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                    message: format!(
                        "`{}` reads the wall clock in solver logic; solvers must be \
                         deterministic (timing belongs in crates/bench or the engine \
                         metrics surface)",
                        path.segments.join("::")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifests;

    fn diags(path: &str, src: &str) -> Vec<(u32, String)> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        Determinism.check(
            &f,
            &Context {
                manifests: Manifests::new(),
            },
            &mut out,
        );
        out.into_iter().map(|d| (d.line, d.message)).collect()
    }

    #[test]
    fn instant_now_in_solver_flagged() {
        let d = diags(
            "crates/core/src/edf.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        assert_eq!(d.len(), 1);
        let d = diags(
            "crates/core/src/edf.rs",
            "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(d.len(), 2, "import and call both flagged: {d:?}");
    }

    #[test]
    fn system_time_flagged() {
        let d = diags(
            "crates/workloads/src/arrivals.rs",
            "fn f() { let t = SystemTime::now(); }\n",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn duration_is_fine() {
        let d = diags(
            "crates/core/src/edf.rs",
            "use std::time::Duration;\nfn f(d: Duration) {}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn bench_and_engine_metrics_exempt() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(diags("crates/bench/src/perf.rs", src).is_empty());
        assert!(diags("crates/bench/src/bin/experiments.rs", src).is_empty());
        assert!(diags("crates/engine/src/lib.rs", src).is_empty());
        assert!(diags("crates/engine/src/metrics.rs", src).is_empty());
        // …but the rest of the engine is not.
        assert_eq!(diags("crates/engine/src/router.rs", src).len(), 1);
    }

    #[test]
    fn serve_crate_is_allowlisted_for_wall_clock() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert!(diags("crates/serve/src/lib.rs", src).is_empty());
        assert!(diags("crates/serve/src/session.rs", src).is_empty());
        // The allowlist is per-crate, not per-pattern: sibling crates
        // with similar paths still fire.
        assert_eq!(diags("crates/sim/src/executor.rs", src).len(), 2);
        assert_eq!(diags("crates/core/src/edf.rs", src).len(), 2);
    }

    #[test]
    fn elastic_pool_idle_timer_is_allowlisted_but_not_the_rest_of_the_engine() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        // The pool's idle-shrink patience deadline is an honest clock
        // consumer: worker count may vary with timing, job results
        // never do.
        assert!(diags("crates/engine/src/pool.rs", src).is_empty());
        // The exemption is file-precise: engine solver logic still
        // fires.
        assert_eq!(diags("crates/engine/src/router.rs", src).len(), 2);
        assert_eq!(diags("crates/engine/src/cache.rs", src).len(), 2);
    }

    #[test]
    fn tests_and_examples_exempt() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(diags("crates/core/tests/properties.rs", src).is_empty());
        assert!(diags("examples/quickstart.rs", src).is_empty());
        let in_mod = "#[cfg(test)]\nmod t { fn f() { let x = Instant::now(); } }\n";
        assert!(diags("crates/core/src/edf.rs", in_mod).is_empty());
    }

    #[test]
    fn allow_directive_suppresses() {
        let d = diags(
            "crates/sim/src/executor.rs",
            "// analyzer: allow(determinism): trace timestamps are display-only\nlet t = SystemTime::now();\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}

//! Rule `concurrency`: the engine's concurrency discipline.
//!
//! Three checks, all lexical:
//!
//! 1. **parking_lot-only locking** — `std::sync::Mutex` / `RwLock` are
//!    banned everywhere outside `vendor/` (the `parking_lot` stub wraps
//!    the std mutex once; everything else must go through it so the
//!    registry swap changes one crate).
//! 2. **pool-only thread spawning** — `thread::spawn` is banned outside
//!    the worker-pool module (`crates/engine/src/pool.rs`); ad-hoc
//!    threads bypass the pool's ordering and backpressure guarantees.
//!    `crossbeam::scope` spawns are the sanctioned alternative.
//! 3. **no lock held across channel ops** — a named lock guard that is
//!    still live (lexically: its `let` binding's block has not closed
//!    and it has not been `drop`ped) when a `.send(…)` / `.recv(…)` /
//!    `.try_recv(…)` appears is a deadlock hazard: channel ops block,
//!    and a blocked holder stalls every other worker contending on the
//!    shard. The same statement combining `.lock()` with a channel op is
//!    flagged too.

use super::{qualified_paths, CodeView, Context, Rule};
use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub(crate) struct Concurrency;

/// The one module allowed to spawn OS threads directly.
const POOL_MODULE: &str = "crates/engine/src/pool.rs";

const CHANNEL_OPS: [&str; 3] = ["send", "recv", "try_recv"];

impl Rule for Concurrency {
    fn id(&self) -> &'static str {
        "concurrency"
    }

    fn description(&self) -> &'static str {
        "parking_lot-only locking, thread::spawn only in the engine worker \
         pool, and no lock guard held across channel send/recv"
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.is_vendor() {
            return;
        }
        let code = CodeView::new(file);
        self.check_paths(file, &code, out);
        self.check_lock_across_channel(file, &code, out);
    }
}

impl Concurrency {
    /// Checks 1 and 2: banned paths, in imports and inline.
    fn check_paths(&self, file: &SourceFile, code: &CodeView<'_>, out: &mut Vec<Diagnostic>) {
        for path in qualified_paths(code) {
            let segs: Vec<&str> = path.segments.iter().map(String::as_str).collect();
            let std_lock = segs
                .windows(2)
                .any(|w| w[0] == "sync" && (w[1] == "Mutex" || w[1] == "RwLock"))
                && segs.first() == Some(&"std");
            if std_lock && !file.allowed(self.id(), path.line) {
                out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: path.line,
                    rule: self.id(),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                    message: format!(
                        "`{}`: std sync primitives are banned; use the `parking_lot` \
                         stub (non-poisoning, swaps to the registry crate mechanically)",
                        path.segments.join("::")
                    ),
                });
            }
            let spawn = segs.windows(2).any(|w| w[0] == "thread" && w[1] == "spawn");
            if spawn && file.rel_path != POOL_MODULE && !file.allowed(self.id(), path.line) {
                out.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: path.line,
                    rule: self.id(),
                    severity: Severity::Error,
                    fingerprint: String::new(),
                    message: format!(
                        "`{}`: OS threads may only be spawned by the engine worker pool \
                         ({POOL_MODULE}); route work through `pool::map_ordered` or \
                         `crossbeam::scope`",
                        path.segments.join("::")
                    ),
                });
            }
        }
    }

    /// Check 3: lexical no-lock-held-across-send/recv.
    fn check_lock_across_channel(
        &self,
        file: &SourceFile,
        code: &CodeView<'_>,
        out: &mut Vec<Diagnostic>,
    ) {
        // Live named guards: (binding name, brace depth at the `let`).
        let mut guards: Vec<(String, usize)> = Vec::new();
        let mut depth = 0usize;
        // Within the current statement: whether we are in a `let` and
        // what its binding name is; whether a `.lock()` already appeared.
        let mut stmt_let_name: Option<String> = None;
        let mut stmt_is_let = false;
        let mut stmt_has_lock = false;

        for i in 0..code.len() {
            let t = code.tok(i);
            match t.kind {
                TokKind::Punct => match t.text.as_bytes().first() {
                    Some(b'{') => depth += 1,
                    Some(b'}') => {
                        depth = depth.saturating_sub(1);
                        guards.retain(|&(_, d)| d <= depth);
                        (stmt_is_let, stmt_let_name, stmt_has_lock) = (false, None, false);
                    }
                    Some(b';') => {
                        (stmt_is_let, stmt_let_name, stmt_has_lock) = (false, None, false);
                    }
                    _ => {}
                },
                TokKind::Ident => match t.text.as_str() {
                    "let" => {
                        stmt_is_let = true;
                        stmt_let_name = None;
                    }
                    "mut" if stmt_is_let => {}
                    "drop" => {
                        // `drop(guard)` releases a named guard early.
                        if let (Some(open), Some(arg)) = (code.get(i + 1), code.get(i + 2)) {
                            if open.is_punct('(') && arg.kind == TokKind::Ident {
                                guards.retain(|(name, _)| *name != arg.text);
                            }
                        }
                    }
                    "lock" if i >= 1 && code.tok(i - 1).is_punct('.') => {
                        stmt_has_lock = true;
                        if let Some(name) = &stmt_let_name {
                            guards.push((name.clone(), depth));
                        }
                    }
                    op if CHANNEL_OPS.contains(&op)
                        && i >= 1
                        && code.tok(i - 1).is_punct('.')
                        && code.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                    {
                        // A `.lock()` later in the same statement (e.g. in
                        // the send's argument list) is also held across the
                        // channel op; scan forward to the statement end.
                        let lock_ahead = (i + 1..code.len())
                            .map(|j| code.tok(j))
                            .take_while(|n| {
                                !(n.kind == TokKind::Punct
                                    && matches!(
                                        n.text.as_bytes().first(),
                                        Some(b';' | b'{' | b'}')
                                    ))
                            })
                            .enumerate()
                            .any(|(k, n)| n.is_ident("lock") && code.tok(i + k).is_punct('.'));
                        let held = !guards.is_empty() || stmt_has_lock || lock_ahead;
                        if held && !file.allowed(self.id(), t.line) {
                            let holder = guards
                                .last()
                                .map(|(n, _)| format!("guard `{n}`"))
                                .unwrap_or_else(|| "a temporary lock guard".to_string());
                            out.push(Diagnostic {
                                file: file.rel_path.clone(),
                                line: t.line,
                                rule: self.id(),
                                severity: Severity::Error,
                                fingerprint: String::new(),
                                message: format!(
                                    "channel `.{op}()` while {holder} is held; a blocking \
                                     channel op under a lock stalls every contending worker \
                                     — release the guard (drop or end of block) first"
                                ),
                            });
                        }
                    }
                    name if stmt_is_let && stmt_let_name.is_none() => {
                        stmt_let_name = Some(name.to_string());
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifests;

    fn diags(path: &str, src: &str) -> Vec<(u32, String)> {
        let f = SourceFile::parse(path, src);
        let mut out = Vec::new();
        Concurrency.check(
            &f,
            &Context {
                manifests: Manifests::new(),
            },
            &mut out,
        );
        out.into_iter().map(|d| (d.line, d.message)).collect()
    }

    #[test]
    fn std_sync_mutex_flagged_import_and_inline() {
        let d = diags(
            "crates/engine/src/cache.rs",
            "use std::sync::Mutex;\nfn f() { let m = std::sync::RwLock::new(0); }\n",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].1.contains("parking_lot"));
    }

    #[test]
    fn std_sync_atomics_and_arc_pass() {
        let d = diags(
            "crates/engine/src/cache.rs",
            "use std::sync::Arc;\nuse std::sync::atomic::{AtomicU64, Ordering};\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn thread_spawn_flagged_outside_pool_module() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(diags("crates/engine/src/router.rs", src).len(), 1);
        assert_eq!(diags("src/bin/gaps.rs", src).len(), 1);
        assert!(diags("crates/engine/src/pool.rs", src).is_empty());
        // `use std::thread;` then `thread::spawn` is also a chain.
        let via_mod = "use std::thread;\nfn f() { thread::spawn(|| {}); }\n";
        assert_eq!(diags("crates/core/src/edf.rs", via_mod).len(), 1);
    }

    #[test]
    fn scoped_spawn_methods_pass() {
        let d = diags(
            "crates/engine/src/router.rs",
            "fn f() { crossbeam::scope(|s| { s.spawn(|_| {}); }).expect(\"join\"); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn guard_held_across_send_flagged() {
        let d = diags(
            "crates/engine/src/x.rs",
            "fn f() {\n    let g = state.lock();\n    tx.send(g.len());\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].0, 3);
        assert!(d[0].1.contains("guard `g`"));
    }

    #[test]
    fn guard_released_by_block_end_passes() {
        let d = diags(
            "crates/engine/src/x.rs",
            "fn f() {\n    { let g = state.lock(); use_it(&g); }\n    tx.send(1);\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn guard_dropped_early_passes() {
        let d = diags(
            "crates/engine/src/x.rs",
            "fn f() {\n    let g = state.lock();\n    drop(g);\n    tx.send(1);\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn same_statement_temporary_lock_with_send_flagged() {
        let d = diags(
            "crates/engine/src/x.rs",
            "fn f() { tx.send(state.lock().snapshot()); }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].1.contains("temporary"));
    }

    #[test]
    fn temporary_lock_in_prior_statement_passes() {
        let d = diags(
            "crates/engine/src/x.rs",
            "fn f() {\n    state.lock().bump();\n    tx.send(1);\n    let v = rx.recv();\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn vendor_files_exempt() {
        let d = diags(
            "vendor/parking_lot/src/lib.rs",
            "fn f() { let _ = std::thread::spawn(|| {}); use std::sync::Mutex; }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_directive_suppresses() {
        let d = diags(
            "crates/engine/src/x.rs",
            "fn f() {\n    let g = m.lock();\n    // analyzer: allow(concurrency): bounded channel has capacity for this send\n    tx.send(1);\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}

//! Rule `lock-order`: inter-procedural deadlock analysis over the whole
//! workspace.
//!
//! Unlike the per-file rules, this pass sees every non-vendor,
//! non-test source at once:
//!
//! 1. **Per-function summaries.** Each `fn` body yields the lock
//!    acquisition sites it contains (`.lock()` / `.read()` / `.write()`
//!    receivers, keyed by type + field path — see *keying* below), the
//!    calls it makes (with the set of guards lexically live at each call
//!    site), and whether it performs a blocking channel op (`.send(…)` /
//!    `.recv(…)`; `try_recv` is non-blocking and exempt).
//! 2. **Call-graph fixpoint.** Calls resolve to workspace functions by
//!    name — qualified calls (`Type::name`, `Self::name`) filter by impl
//!    type; unqualified names resolve only when the workspace defines
//!    exactly one function with that name (ambiguity drops the edge:
//!    conservative toward false negatives, never false positives).
//!    Effective lock sets and channel-blocking flags propagate over the
//!    resolved call graph to a fixpoint.
//! 3. **Acquisition graph.** Acquiring `B` (directly or via a call)
//!    while `A` is held adds the edge `A → B` with its first witness
//!    site. Any edge that lies on a cycle — including self-loops, i.e.
//!    re-acquiring the same key — is reported at its witness site, one
//!    diagnostic per edge, so both halves of an inversion are named.
//!    A guard held across a call into (transitively) channel-blocking
//!    code is reported as its own finding.
//!
//! *Keying.* `self.field` paths key as `ImplType::field` so the same
//! field unifies across methods (index/call segments collapse:
//! `self.shards[i]` → `ShardedCache::shards[]`, which deliberately
//! merges all shards into one node — nested acquisition of two shards
//! is a real order hazard). `ALL_CAPS` receivers key as globals. Any
//! other receiver (locals, parameters) keys under the enclosing
//! function — two functions' locals never unify, again erring toward
//! false negatives. The `// analyzer: allow(lock-order): <why>` hatch
//! works at the witness site like every other rule.

use super::CodeView;
use crate::diagnostics::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

pub(crate) const ID: &str = "lock-order";

pub(crate) const DESCRIPTION: &str =
    "workspace-wide lock-acquisition graph stays acyclic and no guard is \
     held across a call into channel-blocking code (inter-procedural)";

/// Method names that acquire a lock when called with no arguments.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Blocking channel operations (`try_recv` is non-blocking).
const BLOCKING_CHANNEL_OPS: [&str; 2] = ["send", "recv"];

/// Idents that look like calls (`name(`) but are control-flow keywords.
const KEYWORDS: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "let", "mut", "move", "unsafe", "in",
    "as", "where", "impl", "fn", "break", "continue", "await", "ref", "use", "dyn",
];

/// One lock-acquisition site.
#[derive(Clone, Debug)]
struct LockSite {
    key: String,
    line: u32,
}

/// One call made by a function, with the guards live at the call site.
#[derive(Clone, Debug)]
struct CallSite {
    name: String,
    qualifier: Option<String>,
    line: u32,
    held: Vec<LockSite>,
}

/// Per-function summary extracted from one body.
struct FnInfo {
    src: usize,
    name: String,
    impl_type: Option<String>,
    /// Display name: `<rel_path>::[ImplType::]name`.
    qname: String,
    direct_locks: Vec<LockSite>,
    /// Directly observed nested acquisitions: (held, newly acquired).
    nested: Vec<(LockSite, LockSite)>,
    calls: Vec<CallSite>,
    /// Line of the first blocking channel op in the body, if any.
    channel_line: Option<u32>,
}

/// One `from → to` edge of the acquisition graph (first witness wins).
#[derive(Clone, Debug)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    /// Workspace-relative path of the witness site.
    pub file: String,
    /// Line of the acquisition (or of the call the edge flows through).
    pub line: u32,
    /// Empty for a direct nested acquisition, else the callee carrying
    /// the transitive acquisition.
    pub via: String,
}

/// The global lock-acquisition graph, ready for cycle reporting or
/// Graphviz rendering (`gaps lint --dot`).
pub struct LockGraph {
    /// Every lock key seen in the workspace (including isolated ones).
    pub nodes: BTreeSet<String>,
    /// Deduped edges, sorted by (from, to).
    pub edges: Vec<LockEdge>,
}

struct Model {
    fns: Vec<FnInfo>,
    /// Resolved call targets: per function, per call, indices into `fns`.
    targets: Vec<Vec<Vec<usize>>>,
    /// Fixpoint: every lock key function `f` may acquire, transitively.
    eff: Vec<BTreeSet<String>>,
    /// Fixpoint: does `f` (transitively) block on a channel?
    blocks: Vec<bool>,
}

impl Model {
    fn build(sources: &[SourceFile]) -> Model {
        let mut fns = Vec::new();
        for (src, file) in sources.iter().enumerate() {
            if file.is_vendor() || file.is_test_file() {
                continue;
            }
            extract_functions(src, file, &mut fns);
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }
        let targets: Vec<Vec<Vec<usize>>> = fns
            .iter()
            .map(|f| {
                f.calls
                    .iter()
                    .map(|c| resolve(c, f, &by_name, &fns))
                    .collect()
            })
            .collect();
        let mut eff: Vec<BTreeSet<String>> = fns
            .iter()
            .map(|f| f.direct_locks.iter().map(|l| l.key.clone()).collect())
            .collect();
        let mut blocks: Vec<bool> = fns.iter().map(|f| f.channel_line.is_some()).collect();
        // Propagate to a fixpoint (workspace call graphs are small; the
        // simple worklist-free iteration converges in a few rounds).
        loop {
            let mut changed = false;
            for f in 0..fns.len() {
                for call_targets in &targets[f] {
                    for &t in call_targets {
                        if blocks[t] && !blocks[f] {
                            blocks[f] = true;
                            changed = true;
                        }
                        if t != f && !eff[t].is_subset(&eff[f]) {
                            let add: Vec<String> = eff[t].iter().cloned().collect();
                            for k in add {
                                changed |= eff[f].insert(k);
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Model {
            fns,
            targets,
            eff,
            blocks,
        }
    }

    /// Internal edge list with source indices for allow-directive lookups.
    fn edges(&self) -> Vec<(usize, LockEdge)> {
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        let mut out = Vec::new();
        for (fi, f) in self.fns.iter().enumerate() {
            for (held, acquired) in &f.nested {
                if seen.insert((held.key.clone(), acquired.key.clone())) {
                    out.push((
                        f.src,
                        LockEdge {
                            from: held.key.clone(),
                            to: acquired.key.clone(),
                            file: String::new(),
                            line: acquired.line,
                            via: String::new(),
                        },
                    ));
                }
            }
            for (ci, call) in f.calls.iter().enumerate() {
                if call.held.is_empty() {
                    continue;
                }
                for &t in &self.targets[fi][ci] {
                    for key in &self.eff[t] {
                        for held in &call.held {
                            if seen.insert((held.key.clone(), key.clone())) {
                                out.push((
                                    f.src,
                                    LockEdge {
                                        from: held.key.clone(),
                                        to: key.clone(),
                                        file: String::new(),
                                        line: call.line,
                                        via: self.fns[t].qname.clone(),
                                    },
                                ));
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Resolve one call to workspace function indices (empty when unknown
/// or ambiguous).
fn resolve(
    call: &CallSite,
    caller: &FnInfo,
    by_name: &BTreeMap<&str, Vec<usize>>,
    fns: &[FnInfo],
) -> Vec<usize> {
    let Some(cands) = by_name.get(call.name.as_str()) else {
        return Vec::new();
    };
    if let Some(q) = &call.qualifier {
        let q = if q == "Self" {
            caller.impl_type.as_deref().unwrap_or(q)
        } else {
            q
        };
        let filtered: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| fns[i].impl_type.as_deref() == Some(q))
            .collect();
        if !filtered.is_empty() {
            return filtered;
        }
    }
    if cands.len() == 1 {
        cands.clone()
    } else {
        Vec::new()
    }
}

/// Run the rule over all sources, pushing diagnostics.
pub(crate) fn check(sources: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let model = Model::build(sources);

    // Guard held across a call into (transitively) channel-blocking code.
    for (fi, f) in model.fns.iter().enumerate() {
        for (ci, call) in f.calls.iter().enumerate() {
            if call.held.is_empty() {
                continue;
            }
            let Some(&t) = model.targets[fi][ci].iter().find(|&&t| model.blocks[t]) else {
                continue;
            };
            let file = &sources[f.src];
            if file.allowed(ID, call.line) {
                continue;
            }
            let held = &call.held[call.held.len() - 1];
            out.push(Diagnostic {
                file: file.rel_path.clone(),
                line: call.line,
                rule: ID,
                severity: Severity::Error,
                fingerprint: String::new(),
                message: format!(
                    "guard on `{}` (acquired at line {}) is held across a call to \
                     `{}`, which blocks on a channel send/recv; a blocked guard \
                     holder stalls every contending worker",
                    held.key, held.line, model.fns[t].qname
                ),
            });
        }
    }

    // Edges on a cycle of the acquisition graph: one finding per edge,
    // so both halves of an inversion are reported at their own sites.
    let edges = model.edges();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (_, e) in &edges {
        adj.entry(&e.from).or_default().push(&e.to);
    }
    for (src, e) in &edges {
        if !reaches(&adj, &e.to, &e.from) {
            continue;
        }
        let file = &sources[*src];
        if file.allowed(ID, e.line) {
            continue;
        }
        let shape = if e.from == e.to {
            "re-acquires a lock already held (self-cycle)".to_string()
        } else {
            format!(
                "closes the cycle `{}` → `{}` → … → `{}`",
                e.from, e.to, e.from
            )
        };
        let via = if e.via.is_empty() {
            String::new()
        } else {
            format!(" via call to `{}`", e.via)
        };
        out.push(Diagnostic {
            file: file.rel_path.clone(),
            line: e.line,
            rule: ID,
            severity: Severity::Error,
            fingerprint: String::new(),
            message: format!(
                "acquiring `{}` while `{}` is held{via} {shape}; threads taking \
                 these locks in opposite orders can deadlock",
                e.to, e.from
            ),
        });
    }
}

/// Build the acquisition graph for rendering (`gaps lint --dot`).
pub fn build_graph(sources: &[SourceFile]) -> LockGraph {
    let model = Model::build(sources);
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    for f in &model.fns {
        for l in &f.direct_locks {
            nodes.insert(l.key.clone());
        }
    }
    let mut edges: Vec<LockEdge> = model
        .edges()
        .into_iter()
        .map(|(src, mut e)| {
            e.file = sources[src].rel_path.clone();
            nodes.insert(e.from.clone());
            nodes.insert(e.to.clone());
            e
        })
        .collect();
    edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    LockGraph { nodes, edges }
}

/// Render the acquisition graph as Graphviz DOT.
pub fn render_dot(graph: &LockGraph) -> String {
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n  node [shape=box];\n");
    for n in &graph.nodes {
        out.push_str(&format!("  \"{n}\";\n"));
    }
    for e in &graph.edges {
        let via = if e.via.is_empty() {
            String::new()
        } else {
            format!("\\nvia {}", e.via)
        };
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}:{}{via}\"];\n",
            e.from, e.to, e.file, e.line
        ));
    }
    out.push_str("}\n");
    out
}

/// Does `from` reach `to` in the edge adjacency map?
fn reaches(adj: &BTreeMap<&str, Vec<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if seen.insert(n) {
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Extraction: impl ranges, fn bodies, per-body walk
// ---------------------------------------------------------------------

/// Skip a balanced `<…>` group starting at code position `i` (which must
/// be `<`); returns the position just past the matching `>`. `->` arrows
/// inside the group do not count toward the balance.
fn skip_angle(code: &CodeView<'_>, i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < code.len() {
        let t = code.tok(j);
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let arrow = j >= 1 && {
                let p = code.tok(j - 1);
                p.is_punct('-') || p.is_punct('=')
            };
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        } else if t.is_punct(';') || t.is_punct('{') {
            // Unbalanced (comparison operator, not generics): bail out.
            return i + 1;
        }
        j += 1;
    }
    j
}

/// `impl` block spans: (range start, range end, implemented type name).
/// For `impl Trait for Type` the type is the ident after `for`.
fn impl_ranges(code: &CodeView<'_>) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code.tok(i).is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut ty: Option<String> = None;
        while j < code.len() {
            let t = code.tok(j);
            if t.is_punct('{') {
                break;
            }
            if t.is_punct('<') {
                j = skip_angle(code, j);
                continue;
            }
            if t.is_ident("for") {
                ty = None; // the implemented type follows
            } else if t.is_ident("where") {
                // The type is fixed by now; scan on to the brace.
            } else if t.kind == TokKind::Ident && !t.is_ident("dyn") {
                ty = Some(t.text.clone());
            }
            j += 1;
        }
        if j >= code.len() {
            break;
        }
        let close = matching_brace(code, j);
        if let Some(ty) = ty {
            out.push((i, close, ty));
        }
        // Scan inside the impl body for nested impls is unnecessary;
        // resume right after the header so fns inside are still found
        // by the caller's own linear scan.
        i = j + 1;
    }
    out
}

/// Code position of the `}` matching the `{` at `open` (or the last
/// token on imbalance).
fn matching_brace(code: &CodeView<'_>, open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        let t = code.tok(j);
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

/// Find every `fn` with a body; append summaries for the non-test ones.
fn extract_functions(src: usize, file: &SourceFile, fns: &mut Vec<FnInfo>) {
    let code = CodeView::new(file);
    let impls = impl_ranges(&code);

    // First pass: every fn body span (test ones included, so the walk
    // below can skip nested fn bodies it does not own).
    let mut spans: Vec<(usize, usize, usize)> = Vec::new(); // (fn tok, open, close)
    let mut i = 0usize;
    while i < code.len() {
        if code.tok(i).is_ident("fn") {
            if let Some(name_tok) = code.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    let mut j = i + 2;
                    while j < code.len() {
                        let t = code.tok(j);
                        if t.is_punct('{') || t.is_punct(';') {
                            break;
                        }
                        if t.is_punct('<') {
                            j = skip_angle(&code, j);
                            continue;
                        }
                        j += 1;
                    }
                    if j < code.len() && code.tok(j).is_punct('{') {
                        spans.push((i, j, matching_brace(&code, j)));
                    }
                }
            }
        }
        i += 1;
    }

    for &(fn_tok, open, close) in &spans {
        if code.in_test(fn_tok) {
            continue;
        }
        let name = code.tok(fn_tok + 1).text.clone();
        let impl_type = impls
            .iter()
            .filter(|&&(s, e, _)| s < fn_tok && fn_tok < e)
            .min_by_key(|&&(s, e, _)| e - s)
            .map(|(_, _, t)| t.clone());
        let qual = impl_type
            .as_deref()
            .map(|t| format!("{t}::"))
            .unwrap_or_default();
        let qname = format!("{}::{qual}{name}", file.rel_path);
        let inner: Vec<(usize, usize)> = spans
            .iter()
            .filter(|&&(_, s, e)| open < s && e < close)
            .map(|&(_, s, e)| (s, e))
            .collect();
        let mut info = FnInfo {
            src,
            name,
            impl_type,
            qname,
            direct_locks: Vec::new(),
            nested: Vec::new(),
            calls: Vec::new(),
            channel_line: None,
        };
        walk_body(&code, &mut info, open, close, &inner);
        fns.push(info);
    }
}

/// Walk one fn body, tracking lexically live guards exactly like the
/// `concurrency` rule, and record lock sites, nested acquisitions,
/// calls (with held-guard snapshots), and blocking channel ops.
fn walk_body(
    code: &CodeView<'_>,
    info: &mut FnInfo,
    open: usize,
    close: usize,
    inner: &[(usize, usize)],
) {
    let scope = info.qname.clone();
    let mut depth = 0usize;
    // Live named guards: (binding, depth at the `let`, site).
    let mut guards: Vec<(String, usize, LockSite)> = Vec::new();
    // Statement-temporary guards, live to the end of the statement.
    let mut temps: Vec<LockSite> = Vec::new();
    let mut stmt_is_let = false;
    let mut stmt_let_name: Option<String> = None;

    let mut i = open;
    while i <= close {
        // A nested fn owns its own body; skip it here.
        if let Some(&(_, e)) = inner.iter().find(|&&(s, _)| s == i) {
            i = e + 1;
            continue;
        }
        let t = code.tok(i);
        match t.kind {
            TokKind::Punct => match t.text.as_bytes().first() {
                Some(b'{') => depth += 1,
                Some(b'}') => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|&(_, d, _)| d <= depth);
                    temps.clear();
                    (stmt_is_let, stmt_let_name) = (false, None);
                    if depth == 0 {
                        break;
                    }
                }
                Some(b';') => {
                    temps.clear();
                    (stmt_is_let, stmt_let_name) = (false, None);
                }
                _ => {}
            },
            TokKind::Ident => {
                let prev_dot = i >= 1 && code.tok(i - 1).is_punct('.');
                let next_paren = code.get(i + 1).is_some_and(|n| n.is_punct('('));
                match t.text.as_str() {
                    "let" => {
                        stmt_is_let = true;
                        stmt_let_name = None;
                    }
                    "mut" if stmt_is_let => {}
                    "drop" if next_paren => {
                        if let Some(arg) = code.get(i + 2) {
                            if arg.kind == TokKind::Ident {
                                guards.retain(|(name, _, _)| *name != arg.text);
                            }
                        }
                    }
                    m if ACQUIRE_METHODS.contains(&m)
                        && prev_dot
                        && next_paren
                        && code.get(i + 2).is_some_and(|n| n.is_punct(')')) =>
                    {
                        let key = lock_key(code, i - 1, info.impl_type.as_deref(), &scope);
                        let site = LockSite { key, line: t.line };
                        for (_, _, held) in &guards {
                            info.nested.push((held.clone(), site.clone()));
                        }
                        for held in &temps {
                            info.nested.push((held.clone(), site.clone()));
                        }
                        info.direct_locks.push(site.clone());
                        match &stmt_let_name {
                            Some(name) if stmt_is_let => {
                                guards.push((name.clone(), depth, site));
                            }
                            _ => temps.push(site),
                        }
                    }
                    op if BLOCKING_CHANNEL_OPS.contains(&op) && prev_dot && next_paren => {
                        info.channel_line.get_or_insert(t.line);
                    }
                    name if next_paren
                        && !KEYWORDS.contains(&name)
                        && !ACQUIRE_METHODS.contains(&name)
                        && (i == 0 || !code.tok(i - 1).is_ident("fn")) =>
                    {
                        let qualifier = if i >= 2 && code.is_path_sep(i - 2) && i >= 3 {
                            let q = code.tok(i - 3);
                            (q.kind == TokKind::Ident).then(|| q.text.clone())
                        } else {
                            None
                        };
                        let mut held: Vec<LockSite> =
                            guards.iter().map(|(_, _, s)| s.clone()).collect();
                        held.extend(temps.iter().cloned());
                        info.calls.push(CallSite {
                            name: name.to_string(),
                            qualifier,
                            line: t.line,
                            held,
                        });
                    }
                    name if stmt_is_let && stmt_let_name.is_none() => {
                        stmt_let_name = Some(name.to_string());
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Key the receiver chain ending at the `.` before an acquire method.
///
/// `dot` is the code position of that `.`. Walks the chain backwards,
/// collapsing index (`[…]` → `[]`) and call (`(…)` → `()`) segments.
fn lock_key(code: &CodeView<'_>, dot: usize, impl_type: Option<&str>, scope: &str) -> String {
    let mut rev: Vec<String> = Vec::new();
    let mut p = dot; // position of the `.` we walk back from
    loop {
        if p == 0 {
            break;
        }
        let t = code.tok(p - 1);
        if t.kind == TokKind::Ident || t.kind == TokKind::Num {
            rev.push(t.text.clone());
            // Continue only through a `.`; `::`-qualified prefixes keep
            // just their last segment (enough for the ALL_CAPS check).
            if p >= 2 && code.tok(p - 2).is_punct('.') {
                p -= 2;
                continue;
            }
            break;
        }
        if t.is_punct(']') {
            let mut d = 0usize;
            let mut q = p - 1;
            loop {
                let u = code.tok(q);
                if u.is_punct(']') {
                    d += 1;
                } else if u.is_punct('[') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if q == 0 {
                    break;
                }
                q -= 1;
            }
            rev.push("[]".to_string());
            p = q;
            continue;
        }
        if t.is_punct(')') {
            let mut d = 0usize;
            let mut q = p - 1;
            loop {
                let u = code.tok(q);
                if u.is_punct(')') {
                    d += 1;
                } else if u.is_punct('(') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                if q == 0 {
                    break;
                }
                q -= 1;
            }
            // Only method/fn call segments continue a chain; a grouped
            // expression `(x).lock()` ends it.
            if q >= 1 && code.tok(q - 1).kind == TokKind::Ident {
                rev.push("()".to_string());
                p = q;
                continue;
            }
            break;
        }
        break;
    }
    let mut chain = String::new();
    for seg in rev.iter().rev() {
        if seg == "[]" || seg == "()" {
            chain.push_str(seg);
        } else {
            if !chain.is_empty() {
                chain.push('.');
            }
            chain.push_str(seg);
        }
    }
    if chain.is_empty() {
        return format!("{scope}::<expr>");
    }
    if let Some(rest) = chain.strip_prefix("self.") {
        if let Some(ty) = impl_type {
            return format!("{ty}::{rest}");
        }
    }
    let first = rev.last().expect("chain is non-empty");
    let is_global = rev.len() == 1
        && first.len() >= 2
        && first
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && first.chars().any(|c| c.is_ascii_uppercase());
    if is_global {
        return chain;
    }
    format!("{scope}::{chain}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(files: &[(&str, &str)]) -> Vec<(u32, String)> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let mut out = Vec::new();
        check(&sources, &mut out);
        out.into_iter().map(|d| (d.line, d.message)).collect()
    }

    const AB_BA: &str = "struct S { a: parking_lot::Mutex<u64>, b: parking_lot::Mutex<u64> }\n\
         impl S {\n\
             fn ab(&self) {\n\
                 let ga = self.a.lock();\n\
                 let gb = self.b.lock();\n\
                 let _ = *ga + *gb;\n\
             }\n\
             fn ba(&self) {\n\
                 let gb = self.b.lock();\n\
                 let ga = self.a.lock();\n\
                 let _ = *ga + *gb;\n\
             }\n\
         }\n";

    #[test]
    fn two_field_inversion_reports_both_edges() {
        let d = lint(&[("crates/engine/src/s.rs", AB_BA)]);
        let lines: Vec<u32> = d.iter().map(|&(l, _)| l).collect();
        assert_eq!(lines, vec![5, 10], "{d:?}");
        assert!(
            d[0].1.contains("`S::b`") && d[0].1.contains("`S::a`"),
            "{d:?}"
        );
    }

    #[test]
    fn cycle_spanning_files_is_found() {
        let f1 =
            "impl S {\n    fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n}\n\
                  struct S { a: parking_lot::Mutex<u64>, b: parking_lot::Mutex<u64> }\n";
        let f2 =
            "impl S {\n    fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n}\n";
        let d = lint(&[
            ("crates/engine/src/f1.rs", f1),
            ("crates/engine/src/f2.rs", f2),
        ]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "impl S {\n\
             fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             fn ab2(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
         }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn inversion_via_helper_call_is_found() {
        let src = "impl S {\n\
             fn outer(&self) {\n\
                 let g = self.a.lock();\n\
                 self.helper();\n\
             }\n\
             fn helper(&self) { let h = self.b.lock(); }\n\
             fn reverse(&self) { let h = self.b.lock(); let g = self.a.lock(); }\n\
         }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        let lines: Vec<u32> = d.iter().map(|&(l, _)| l).collect();
        // The call edge (line 4) and the direct reverse edge (line 7).
        assert_eq!(lines, vec![4, 7], "{d:?}");
        assert!(d[0].1.contains("via call to"), "{d:?}");
    }

    #[test]
    fn transitive_two_hop_call_edge() {
        let src = "impl S {\n\
             fn outer(&self) { let g = self.a.lock(); self.mid(); }\n\
             fn mid(&self) { self.leaf(); }\n\
             fn leaf(&self) { let h = self.b.lock(); }\n\
             fn reverse(&self) { let h = self.b.lock(); let g = self.a.lock(); }\n\
         }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn guard_across_call_into_blocking_fn() {
        let src = "impl S {\n\
             fn waits(&self) { let v = self.rx.recv(); }\n\
             fn bad(&self) {\n\
                 let g = self.state.lock();\n\
                 self.waits();\n\
             }\n\
         }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].0, 5);
        assert!(d[0].1.contains("blocks on a channel"), "{d:?}");
    }

    #[test]
    fn ambiguous_callee_names_are_skipped() {
        let src = "impl A { fn get(&self) { let g = self.x.lock(); } }\n\
                   impl B { fn get(&self) { let g = self.y.lock(); } }\n\
                   impl C {\n\
                       fn f(&self) { let g = self.z.lock(); get(); }\n\
                   }\n\
                   fn reverse(c: &C) { }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn qualified_call_resolves_through_ambiguity() {
        let src = "impl A { fn go(&self) { let g = self.x.lock(); } }\n\
                   impl B { fn go(&self) {} }\n\
                   impl C {\n\
                       fn f(&self, a: &A) { let g = self.z.lock(); A::go(a); }\n\
                       fn lockz(&self) { let g = self.z.lock(); }\n\
                   }\n\
                   impl A { fn rev(&self, c: &C) { let g = self.x.lock(); C::lockz(c); } }\n";
        // `go` is ambiguous by name but `A::go` resolves by qualifier:
        // f: C::z -> A::x (via A::go); rev: A::x -> C::z (via C::lockz).
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|(_, m)| m.contains("via call to")), "{d:?}");
    }

    #[test]
    fn locals_do_not_unify_across_functions() {
        let src = "fn f(a: &parking_lot::Mutex<u64>, b: &parking_lot::Mutex<u64>) {\n\
                       let g = a.lock(); let h = b.lock();\n\
                   }\n\
                   fn g(a: &parking_lot::Mutex<u64>, b: &parking_lot::Mutex<u64>) {\n\
                       let g = b.lock(); let h = a.lock();\n\
                   }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn global_statics_unify_and_self_cycle_reports() {
        let src = "fn f() { let g = REGISTRY.lock(); helper(); }\n\
                   fn helper() { let h = REGISTRY.lock(); }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].1.contains("self-cycle"), "{d:?}");
    }

    #[test]
    fn allow_directive_suppresses_edge() {
        let with_allow = "impl S {\n\
             fn ab(&self) {\n\
                 let ga = self.a.lock();\n\
                 // analyzer: allow(lock-order): startup-only path, never concurrent with ba\n\
                 let gb = self.b.lock();\n\
             }\n\
             fn ba(&self) {\n\
                 let gb = self.b.lock();\n\
                 let ga = self.a.lock();\n\
             }\n\
         }\n";
        let d = lint(&[("crates/engine/src/s.rs", with_allow)]);
        // Only the un-allowed half remains.
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].0, 9);
    }

    #[test]
    fn test_code_and_vendor_are_exempt() {
        let d = lint(&[
            ("crates/engine/tests/t.rs", AB_BA),
            ("vendor/parking_lot/src/x.rs", AB_BA),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn shard_indexing_collapses_to_one_node() {
        let src = "impl Cache {\n\
             fn rebalance(&self, i: usize, j: usize) {\n\
                 let a = self.shards[i].lock();\n\
                 let b = self.shards[j].lock();\n\
             }\n\
         }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].1.contains("Cache::shards[]"), "{d:?}");
        assert!(d[0].1.contains("self-cycle"), "{d:?}");
    }

    #[test]
    fn graph_and_dot_render() {
        let sources = vec![SourceFile::parse("crates/engine/src/s.rs", AB_BA)];
        let g = build_graph(&sources);
        assert!(g.nodes.contains("S::a") && g.nodes.contains("S::b"));
        assert_eq!(g.edges.len(), 2);
        let dot = render_dot(&g);
        assert!(dot.contains("digraph lock_order"), "{dot}");
        assert!(
            dot.contains("\"S::a\" -> \"S::b\" [label=\"crates/engine/src/s.rs:5\"]"),
            "{dot}"
        );
    }

    #[test]
    fn temporary_guard_nesting_is_tracked() {
        let src = "impl S {\n\
             fn f(&self) { self.a.lock().merge(&self.b.lock()); }\n\
             fn g(&self) { let x = self.b.lock(); let y = self.a.lock(); }\n\
         }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        // f nests b under a (same statement); g reverses.
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn rwlock_read_write_sites_count() {
        let src = "impl S {\n\
             fn f(&self) { let r = self.incumbent.read(); let g = self.q.lock(); }\n\
             fn g(&self) { let w = self.q.lock(); let x = self.incumbent.write(); }\n\
         }\n";
        let d = lint(&[("crates/engine/src/s.rs", src)]);
        assert_eq!(d.len(), 2, "{d:?}");
    }
}

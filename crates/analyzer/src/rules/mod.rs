//! The rule framework and catalog.
//!
//! A rule is a lexical check over one [`SourceFile`] with access to the
//! shared [`Context`] (vendor manifests). Rules decide their own
//! applicability from the file's workspace-relative path, honor the
//! `// analyzer: allow(<rule>)` escape hatch via [`SourceFile::allowed`],
//! and push [`Diagnostic`]s.
//!
//! Shared machinery lives here: a comment-free code view of the token
//! stream, maximal qualified-path extraction (`std::sync::Mutex`), and a
//! `use`-declaration tree parser — the three shapes every rule matches.
//!
//! One pass does not fit the per-file trait: the inter-procedural
//! [`lock_order`] analysis needs every workspace file at once, so it
//! runs after the catalog (see `analyze_sources`) but shares the same
//! diagnostic and allow-directive conventions.

mod concurrency;
mod determinism;
pub mod lock_order;
mod panic_free;
mod unsafe_audit;
mod vendor_subset;

use crate::diagnostics::Diagnostic;
use crate::manifest::Manifests;
use crate::source::SourceFile;

/// Shared context for a lint run.
pub struct Context {
    /// Vendor API manifests (absent entries mean a missing `API.txt`).
    pub manifests: Manifests,
}

/// One lint rule.
pub trait Rule {
    /// Stable rule id (used in diagnostics and allow directives).
    fn id(&self) -> &'static str;
    /// One-line description for `gaps lint --rules`.
    fn description(&self) -> &'static str;
    /// Check one file, pushing findings.
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>);
}

/// The full rule catalog, in reporting order.
pub fn catalog() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(vendor_subset::VendorSubset),
        Box::new(panic_free::PanicFree),
        Box::new(concurrency::Concurrency),
        Box::new(unsafe_audit::UnsafeAudit),
        Box::new(determinism::Determinism),
    ]
}

/// Ids of every rule allow directives may target: the per-file catalog
/// plus the workspace-wide [`lock_order`] pass (which runs outside the
/// catalog because it needs every file at once).
pub fn known_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = catalog().iter().map(|r| r.id()).collect();
    ids.push(lock_order::ID);
    ids
}

// ---------------------------------------------------------------------
// Shared extraction helpers
// ---------------------------------------------------------------------

/// A comment-free view of a file's tokens: `idx[i]` is the position of
/// the `i`-th code token in `file.toks`.
pub(crate) struct CodeView<'a> {
    pub file: &'a SourceFile,
    pub idx: Vec<usize>,
}

impl<'a> CodeView<'a> {
    pub(crate) fn new(file: &'a SourceFile) -> CodeView<'a> {
        CodeView {
            file,
            idx: (0..file.toks.len())
                .filter(|&i| !file.toks[i].is_comment())
                .collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.idx.len()
    }

    pub(crate) fn tok(&self, i: usize) -> &crate::lexer::Tok {
        &self.file.toks[self.idx[i]]
    }

    pub(crate) fn get(&self, i: usize) -> Option<&crate::lexer::Tok> {
        self.idx.get(i).map(|&j| &self.file.toks[j])
    }

    /// Is code token `i` inside in-file test code?
    pub(crate) fn in_test(&self, i: usize) -> bool {
        self.file.token_in_test(self.idx[i])
    }

    /// Is there a `::` (two adjacent `:` puncts) at code positions
    /// `i`, `i + 1`?
    pub(crate) fn is_path_sep(&self, i: usize) -> bool {
        self.get(i).is_some_and(|t| t.is_punct(':'))
            && self.get(i + 1).is_some_and(|t| t.is_punct(':'))
    }
}

/// A qualified path reference (`a::b::c`) found in code.
#[derive(Debug)]
pub(crate) struct PathRef {
    /// Path segments; a trailing `*` segment marks a glob import.
    pub segments: Vec<String>,
    /// Line of the first segment.
    pub line: u32,
    /// Whether the reference sits in in-file test code.
    pub in_test: bool,
    /// Whether the reference comes from a `use` declaration (as opposed
    /// to an inline expression/type path).
    pub from_use: bool,
}

/// Extract every qualified path in the file: `use` declarations are
/// parsed as trees (each leaf yields one path), and inline chains of
/// `ident::ident` are collected maximally (turbofish and `{` stop a
/// chain). Single-segment references are not paths and are skipped.
pub(crate) fn qualified_paths(code: &CodeView<'_>) -> Vec<PathRef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let t = code.tok(i);
        if t.is_ident("use") {
            i = parse_use_decl(code, i, &mut out);
            continue;
        }
        if t.kind == crate::lexer::TokKind::Ident
            && code.is_path_sep(i + 1)
            && !(i >= 2 && code.is_path_sep(i - 2))
            && !(i >= 1 && code.get(i - 1).is_some_and(|p| p.is_punct('.')))
        {
            let line = t.line;
            let in_test = code.in_test(i);
            let mut segments = vec![t.text.clone()];
            let mut j = i + 1;
            while code.is_path_sep(j) {
                match code.get(j + 2) {
                    Some(n) if n.kind == crate::lexer::TokKind::Ident => {
                        segments.push(n.text.clone());
                        j += 3;
                    }
                    _ => break, // turbofish `::<`, `::{`, `::*` outside use
                }
            }
            if segments.len() >= 2 {
                out.push(PathRef {
                    segments,
                    line,
                    in_test,
                    from_use: false,
                });
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Parse the `use` declaration starting at code position `i` (the `use`
/// ident), pushing one [`PathRef`] per leaf. Returns the position just
/// past the terminating `;`.
fn parse_use_decl(code: &CodeView<'_>, i: usize, out: &mut Vec<PathRef>) -> usize {
    let line = code.tok(i).line;
    let in_test = code.in_test(i);
    let mut j = i + 1;
    let mut prefix: Vec<String> = Vec::new();
    parse_use_tree(code, &mut j, &mut prefix, out, line, in_test);
    // Consume through the `;` if the parser stopped short of it.
    let mut k = j;
    while k < code.len() && !code.tok(k).is_punct(';') {
        k += 1;
    }
    k + 1
}

/// Recursive-descent over one use (sub)tree at `*j`; `prefix` holds the
/// segments accumulated so far. Leaves `*j` just past the subtree; the
/// caller restores `prefix` to its pre-call length.
fn parse_use_tree(
    code: &CodeView<'_>,
    j: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<PathRef>,
    line: u32,
    in_test: bool,
) {
    loop {
        match code.get(*j) {
            Some(t) if t.kind == crate::lexer::TokKind::Ident => {
                prefix.push(t.text.clone());
                *j += 1;
                if code.is_path_sep(*j) {
                    *j += 2;
                    continue; // descend into the next segment / group
                }
                emit_leaf(prefix, out, line, in_test);
                if code.get(*j).is_some_and(|t| t.is_ident("as")) {
                    *j += 2; // skip the alias name
                }
                return;
            }
            Some(t) if t.is_punct('*') => {
                prefix.push("*".to_string());
                emit_leaf(prefix, out, line, in_test);
                *j += 1;
                return;
            }
            Some(t) if t.is_punct('{') => {
                *j += 1;
                loop {
                    match code.get(*j) {
                        Some(t) if t.is_punct('}') => {
                            *j += 1;
                            return;
                        }
                        Some(t) if t.is_punct(',') => {
                            *j += 1;
                        }
                        Some(_) => {
                            let saved = prefix.len();
                            parse_use_tree(code, j, prefix, out, line, in_test);
                            prefix.truncate(saved);
                        }
                        None => return,
                    }
                }
            }
            _ => return,
        }
    }
}

fn emit_leaf(prefix: &[String], out: &mut Vec<PathRef>, line: u32, in_test: bool) {
    if prefix.len() >= 2 {
        out.push(PathRef {
            segments: prefix.to_vec(),
            line,
            in_test,
            from_use: true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths_of(src: &str) -> Vec<(Vec<String>, bool)> {
        let f = SourceFile::parse("x.rs", src);
        let code = CodeView::new(&f);
        qualified_paths(&code)
            .into_iter()
            .map(|p| (p.segments, p.from_use))
            .collect()
    }

    fn segs(paths: &[(Vec<String>, bool)]) -> Vec<String> {
        paths.iter().map(|(s, _)| s.join("::")).collect()
    }

    #[test]
    fn inline_chains_are_maximal() {
        let p = paths_of("let r = rand::rngs::StdRng::seed_from_u64(7);");
        assert_eq!(segs(&p), vec!["rand::rngs::StdRng::seed_from_u64"]);
        assert!(!p[0].1);
    }

    #[test]
    fn turbofish_stops_a_chain() {
        let p = paths_of("channel::bounded::<(usize, T)>(cap)");
        assert_eq!(segs(&p), vec!["channel::bounded"]);
    }

    #[test]
    fn method_calls_do_not_start_chains() {
        let p = paths_of("foo.bar::<T>(); x.send(1);");
        assert!(p.is_empty(), "{p:?}");
    }

    #[test]
    fn use_groups_expand_to_leaves() {
        let p = paths_of("use rand::{Rng, SeedableRng, rngs::StdRng};");
        assert_eq!(
            segs(&p),
            vec!["rand::Rng", "rand::SeedableRng", "rand::rngs::StdRng"]
        );
        assert!(p.iter().all(|(_, from_use)| *from_use));
    }

    #[test]
    fn use_glob_and_alias() {
        let p = paths_of("use proptest::prelude::*;\nuse crossbeam::channel as ch;");
        assert_eq!(segs(&p), vec!["proptest::prelude::*", "crossbeam::channel"]);
    }

    #[test]
    fn nested_use_groups() {
        let p = paths_of("use a::{b::{c, d}, e};");
        assert_eq!(segs(&p), vec!["a::b::c", "a::b::d", "a::e"]);
    }

    #[test]
    fn chains_inside_test_mods_are_flagged_in_test() {
        let f = SourceFile::parse(
            "x.rs",
            "fn live() { std::sync::park(); }\n#[cfg(test)]\nmod t { fn f() { std::thread::spawn(g); } }\n",
        );
        let code = CodeView::new(&f);
        let paths = qualified_paths(&code);
        assert_eq!(paths.len(), 2);
        assert!(!paths[0].in_test);
        assert!(paths[1].in_test);
    }
}

//! A small hand-rolled Rust tokenizer.
//!
//! The offline vendor tree has no `syn`, so the analyzer lexes source
//! itself. The token stream is deliberately coarse — identifiers,
//! single-character punctuation, literals, and comments, each tagged with
//! a 1-based line number — because every rule in the catalog is lexical:
//! they match path chains (`std::sync::Mutex`), method-call idents
//! (`.unwrap()`), macro heads (`panic!`), and comment text (`// SAFETY:`).
//!
//! What the lexer *must* get right for the rules to be sound is
//! **classification**: text inside string/char literals, raw strings, and
//! comments must never leak into identifier tokens (else `"panic!"` in a
//! message would trip the panic-freedom rule), and lifetimes must not be
//! confused with char literals (else `'a` would swallow source). Those
//! cases are covered by unit tests below.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal (integer part only; `1.5` lexes as `1` `.` `5`).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) — distinguished from [`TokKind::Char`].
    Lifetime,
    /// `// …` comment (text includes the slashes, excludes the newline).
    LineComment,
    /// `/* … */` comment, nesting handled; may span lines.
    BlockComment,
}

/// One token with its (1-based) source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True iff this token is an identifier equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True iff this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True iff this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Unterminated literals/comments end at EOF rather than
/// erroring: the analyzer must degrade gracefully on any input file.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one char, maintaining the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if is_ident_start(c) => self.ident_or_prefixed(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    /// Plain (non-raw) string body after the opening `"` was *not* yet
    /// consumed; handles `\"` and `\\` escapes.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char, whatever it is
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// Raw string starting at the current `r`/`b` prefix position.
    /// Returns false if the lookahead is not actually a raw string.
    fn try_raw_string(&mut self, line: u32) -> bool {
        // Accept r", r#…", br", b", rb" prefixes. Position on first char.
        let mut ahead = 0;
        let mut saw_r = false;
        for _ in 0..2 {
            match self.peek(ahead) {
                Some('r') if !saw_r => {
                    saw_r = true;
                    ahead += 1;
                }
                Some('b') if ahead == 0 => ahead += 1,
                _ => break,
            }
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') || (!saw_r && hashes > 0) {
            return false;
        }
        if !saw_r {
            // b"…": plain string semantics with escapes.
            self.bump(); // b
            self.string(line);
            return true;
        }
        for _ in 0..ahead + hashes + 1 {
            self.bump(); // prefix, hashes, opening quote
        }
        // Scan for `"` followed by `hashes` hash marks.
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(matched) == Some('#') {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.push(TokKind::Str, String::new(), line);
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'` then: ident-start + no closing quote => lifetime;
        // otherwise a char literal (escaped or single-char).
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => after != Some('\''),
            _ => false,
        };
        self.bump(); // the quote
        if is_lifetime {
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::Lifetime, text, line);
        } else {
            // Char literal: consume until the closing quote, honoring `\`.
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokKind::Char, String::new(), line);
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident_or_prefixed(&mut self, line: u32) {
        // `r"…"`, `b"…"`, `br#"…"#` literals and `r#ident` raw identifiers
        // all start like identifiers; disambiguate before consuming.
        if matches!(self.peek(0), Some('r' | 'b')) && self.try_raw_string(line) {
            return;
        }
        let mut text = String::new();
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            // Raw identifier: keep the bare name (`r#type` matches `type`).
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `b'x'` byte char: the `b` was consumed as an ident start.
        if text == "b" && self.peek(0) == Some('\'') {
            self.char_or_lifetime(line);
            return;
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("foo::bar\nbaz");
        assert_eq!(toks.len(), 5);
        assert!(toks[0].is_ident("foo"));
        assert!(toks[1].is_punct(':'));
        assert_eq!(toks[3].line, 1);
        assert!(toks[4].is_ident("baz"));
        assert_eq!(toks[4].line, 2);
    }

    #[test]
    fn strings_do_not_leak_idents() {
        let toks = kinds(r#"let x = "panic! unwrap() // no";"#);
        assert!(toks.iter().all(|(_, t)| !t.contains("unwrap")));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let x = r#"quote " inside"# + 1;"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1"));
        let toks = kinds("br#\"bytes\"# ");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokKind::Str);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn byte_char_literals() {
        let toks = lex("let c = b'\\n'; let d = b'x';");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_captured_with_text() {
        let toks = lex("code(); // trailing note\n/* block\nspans */ more");
        let comments: Vec<_> = toks.iter().filter(|t| t.is_comment()).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("trailing note"));
        assert!(comments[1].text.contains("spans"));
        assert_eq!(comments[1].line, 2);
        assert!(toks.last().expect("tokens").is_ident("more"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still out */ after");
        assert_eq!(toks.len(), 2);
        assert!(toks[0].is_comment());
        assert!(toks[1].is_ident("after"));
    }

    #[test]
    fn raw_identifiers_keep_bare_name() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        assert!(!lex("\"unterminated").is_empty());
        assert!(!lex("/* unterminated").is_empty());
        assert!(!lex("r#\"unterminated").is_empty());
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("0..10u64 + 0x_ff");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "10u64"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0x_ff"));
    }
}

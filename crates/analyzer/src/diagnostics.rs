//! Structured diagnostics and the two output renderers (human text and
//! machine JSON — the JSON writer hand-escapes, since the workspace has
//! no serde).

use std::fmt;

/// How severe a finding is. Every rule in the current catalog reports
/// `Error` (the lint gate is blocking); `Warning` exists so future rules
/// can report without failing CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: where, which rule, how bad, and what to do about it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (e.g. `panic-free`).
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.file,
            self.line,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

/// Sort diagnostics into the stable reporting order: file, line, rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
}

/// Human-readable report, one line per diagnostic plus a summary tail.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if diags.is_empty() {
        out.push_str("gaps lint: clean\n");
    } else {
        out.push_str(&format!(
            "gaps lint: {} finding{} ({} error{})\n",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            errors,
            if errors == 1 { "" } else { "s" },
        ));
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report:
/// `{"diagnostics": [...], "errors": N, "count": N}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(d.rule),
            d.severity.as_str(),
            json_escape(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    out.push_str(&format!(
        "],\n  \"errors\": {},\n  \"count\": {}\n}}\n",
        errors,
        diags.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, msg: &str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule: "panic-free",
            severity: Severity::Error,
            message: msg.into(),
        }
    }

    #[test]
    fn display_format() {
        let d = diag(
            "crates/core/src/edf.rs",
            12,
            "`.unwrap()` in solver hot path",
        );
        assert_eq!(
            d.to_string(),
            "crates/core/src/edf.rs:12: error[panic-free]: `.unwrap()` in solver hot path"
        );
    }

    #[test]
    fn sort_is_by_file_then_line() {
        let mut ds = vec![
            diag("b.rs", 1, "x"),
            diag("a.rs", 9, "x"),
            diag("a.rs", 2, "x"),
        ];
        sort(&mut ds);
        assert_eq!(
            ds.iter()
                .map(|d| (d.file.as_str(), d.line))
                .collect::<Vec<_>>(),
            vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]
        );
    }

    #[test]
    fn text_summary_counts() {
        assert!(render_text(&[]).contains("clean"));
        let two = render_text(&[diag("a.rs", 1, "x"), diag("a.rs", 2, "y")]);
        assert!(two.contains("2 findings (2 errors)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = diag("a.rs", 3, "bad \"quote\"\\path");
        let json = render_json(&[d]);
        assert!(json.contains(r#""message": "bad \"quote\"\\path""#));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"errors\": 1"));
        let empty = render_json(&[]);
        assert!(empty.contains("\"diagnostics\": []"));
        assert!(empty.contains("\"count\": 0"));
    }
}

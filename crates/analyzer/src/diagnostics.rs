//! Structured diagnostics and the two output renderers (human text and
//! machine JSON — the JSON writer hand-escapes, since the workspace has
//! no serde).

use std::fmt;

/// How severe a finding is. Every rule in the current catalog reports
/// `Error` (the lint gate is blocking); `Warning` exists so future rules
/// can report without failing CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: where, which rule, how bad, and what to do about it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (e.g. `panic-free`).
    pub rule: &'static str,
    pub severity: Severity,
    pub message: String,
    /// Stable identity for baselining: hash of rule + path + the flagged
    /// line's *content* (so findings survive unrelated edits that shift
    /// line numbers). Rules leave this empty; `analyze_sources` fills it.
    pub fingerprint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.file,
            self.line,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

/// Compute the stable fingerprint of a finding: 64-bit FNV-1a over
/// `rule NUL rel_path NUL trimmed-line-text`, rendered as 16 hex digits.
/// Line *content* (not number) keeps the id stable across unrelated
/// edits above the flagged site; two identical findings on identical
/// lines of the same file intentionally collide — suppressing one in a
/// baseline suppresses its twins.
pub fn fingerprint(rule: &str, rel_path: &str, line_text: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for part in [rule.as_bytes(), b"\0", rel_path.as_bytes(), b"\0"] {
        for &b in part {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    for &b in line_text.trim().as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

/// Sort diagnostics into the stable reporting order: file, line, rule.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
}

/// Human-readable report, one line per diagnostic plus a summary tail.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if diags.is_empty() {
        out.push_str("gaps lint: clean\n");
    } else {
        out.push_str(&format!(
            "gaps lint: {} finding{} ({} error{})\n",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            errors,
            if errors == 1 { "" } else { "s" },
        ));
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report:
/// `{"diagnostics": [...], "errors": N, "count": N}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"fingerprint\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(d.rule),
            d.severity.as_str(),
            json_escape(&d.fingerprint),
            json_escape(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    out.push_str(&format!(
        "],\n  \"errors\": {},\n  \"count\": {}\n}}\n",
        errors,
        diags.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, msg: &str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule: "panic-free",
            severity: Severity::Error,
            message: msg.into(),
            fingerprint: String::new(),
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = fingerprint("panic-free", "crates/core/src/edf.rs", "    x.unwrap();");
        // Indentation-only changes do not move the fingerprint…
        let b = fingerprint("panic-free", "crates/core/src/edf.rs", "x.unwrap();");
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        // …but rule, path, or content changes do.
        assert_ne!(
            a,
            fingerprint("concurrency", "crates/core/src/edf.rs", "x.unwrap();")
        );
        assert_ne!(
            a,
            fingerprint("panic-free", "crates/core/src/dp.rs", "x.unwrap();")
        );
        assert_ne!(
            a,
            fingerprint("panic-free", "crates/core/src/edf.rs", "y.unwrap();")
        );
    }

    #[test]
    fn display_format() {
        let d = diag(
            "crates/core/src/edf.rs",
            12,
            "`.unwrap()` in solver hot path",
        );
        assert_eq!(
            d.to_string(),
            "crates/core/src/edf.rs:12: error[panic-free]: `.unwrap()` in solver hot path"
        );
    }

    #[test]
    fn sort_is_by_file_then_line() {
        let mut ds = vec![
            diag("b.rs", 1, "x"),
            diag("a.rs", 9, "x"),
            diag("a.rs", 2, "x"),
        ];
        sort(&mut ds);
        assert_eq!(
            ds.iter()
                .map(|d| (d.file.as_str(), d.line))
                .collect::<Vec<_>>(),
            vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]
        );
    }

    #[test]
    fn text_summary_counts() {
        assert!(render_text(&[]).contains("clean"));
        let two = render_text(&[diag("a.rs", 1, "x"), diag("a.rs", 2, "y")]);
        assert!(two.contains("2 findings (2 errors)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = diag("a.rs", 3, "bad \"quote\"\\path");
        let json = render_json(&[d]);
        assert!(json.contains(r#""message": "bad \"quote\"\\path""#));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"errors\": 1"));
        let empty = render_json(&[]);
        assert!(empty.contains("\"diagnostics\": []"));
        assert!(empty.contains("\"count\": 0"));
    }
}

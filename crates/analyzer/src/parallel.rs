//! Ordered parallel map over the vendored `crossbeam` stubs — the same
//! scoped-worker shape as the engine pool (`crates/engine/src/pool.rs`),
//! reproduced here because the analyzer sits below the engine in the
//! build graph and must not depend on it.
//!
//! Work fans out through a bounded channel (backpressure caps the
//! in-flight window), results return over an unbounded channel tagged
//! with their input index, and the caller-visible order is the input
//! order — so parallelizing the per-file scan cannot perturb diagnostic
//! order (which is additionally re-sorted by `diagnostics::sort`).

use crossbeam::channel;

/// Apply `f` to every `(index, item)` on `threads` scoped workers and
/// return results in input order. Deterministic given a deterministic
/// `f`; re-raises worker panics after the scope joins.
pub(crate) fn map_ordered<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, total);
    if threads == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let (work_tx, work_rx) = channel::bounded::<(usize, T)>(threads * 2);
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
    let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            s.spawn(move |_| {
                for (index, item) in work_rx {
                    // The collector only disappears early if a sibling
                    // panicked; stop quietly and let the scope re-raise.
                    if result_tx.send((index, f(index, item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(work_rx);
        drop(result_tx);
        for pair in items.into_iter().enumerate() {
            work_tx.send(pair).expect("a worker is alive to receive");
        }
        drop(work_tx);
        for _ in 0..total {
            let (index, value) = result_rx.recv().expect("every item yields a result");
            results[index] = Some(value);
        }
    })
    .expect("worker threads join");
    results
        .into_iter()
        .map(|r| r.expect("every index was filled"))
        .collect()
}

/// Worker count for the file scan: the machine's parallelism, capped —
/// lexing is memory-bound and more than 8 workers just contend.
pub(crate) fn scan_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let one = map_ordered(items.clone(), 1, |i, x| (i as u64, x * 3));
        let many = map_ordered(items, 8, |i, x| (i as u64, x * 3));
        assert_eq!(one, many);
        assert_eq!(many[256], (256, 768));
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = map_ordered(Vec::<u8>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn scan_threads_is_at_least_one() {
        assert!(scan_threads() >= 1);
    }
}

//! Random one-interval (release/deadline) workloads.

use gaps_core::instance::{Instance, Job};
use gaps_core::time::Time;
use rand::Rng;

/// Uniformly random windows: each job's release is uniform in
/// `[0, horizon)`, and its deadline release + `Uniform[0, max_slack]`.
/// Feasibility is *not* guaranteed.
pub fn uniform(
    rng: &mut impl Rng,
    n: usize,
    horizon: Time,
    max_slack: Time,
    processors: u32,
) -> Instance {
    assert!(horizon >= 1 && max_slack >= 0);
    let jobs = (0..n)
        .map(|_| {
            let r = rng.gen_range(0..horizon);
            let d = r + rng.gen_range(0..=max_slack);
            Job::new(r, d)
        })
        .collect();
    Instance::new(jobs, processors).expect("windows are valid by construction")
}

/// Feasible-by-construction batch: pick `n` busy slots respecting the
/// capacity `p` (uniform over the horizon), then open a window of random
/// slack around each. The slot choice itself is a feasible schedule, so
/// the instance always admits one.
pub fn feasible(
    rng: &mut impl Rng,
    n: usize,
    horizon: Time,
    max_slack: Time,
    processors: u32,
) -> Instance {
    assert!(
        (horizon as u128) * processors as u128 >= n as u128,
        "capacity p·horizon must fit n jobs"
    );
    let mut load = vec![0u32; horizon as usize];
    let jobs = (0..n)
        .map(|_| {
            let t = loop {
                let t = rng.gen_range(0..horizon);
                if load[t as usize] < processors {
                    break t;
                }
            };
            load[t as usize] += 1;
            let before = rng.gen_range(0..=max_slack);
            let after = rng.gen_range(0..=max_slack);
            Job::new((t - before).max(0), t + after)
        })
        .collect();
    let inst = Instance::new(jobs, processors).expect("valid windows");
    debug_assert!(gaps_core::edf::is_feasible(&inst));
    inst
}

/// Bursty arrivals: `bursts` clusters of `per_burst` jobs each; cluster
/// `i` occupies `[i·(span + dead), i·(span + dead) + span)`, and each job
/// gets a window of `window_len` slots inside its cluster.
pub fn bursty(
    rng: &mut impl Rng,
    bursts: usize,
    per_burst: usize,
    span: Time,
    dead: Time,
    window_len: Time,
    processors: u32,
) -> Instance {
    assert!(span >= window_len && window_len >= 1);
    let mut jobs = Vec::with_capacity(bursts * per_burst);
    for b in 0..bursts {
        let base = b as Time * (span + dead);
        for _ in 0..per_burst {
            let r = base + rng.gen_range(0..=(span - window_len));
            jobs.push(Job::new(r, r + window_len - 1));
        }
    }
    Instance::new(jobs, processors).expect("valid windows")
}

/// Laxity-controlled family: every job has window length exactly
/// `laxity + 1`; releases uniform. Sweeping `laxity` from 0 (rigid) to
/// large (fluid) is how experiments steer gap structure.
pub fn fixed_laxity(
    rng: &mut impl Rng,
    n: usize,
    horizon: Time,
    laxity: Time,
    processors: u32,
) -> Instance {
    let jobs = (0..n)
        .map(|_| {
            let r = rng.gen_range(0..horizon);
            Job::new(r, r + laxity)
        })
        .collect();
    Instance::new(jobs, processors).expect("valid windows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = uniform(&mut rng, 40, 50, 10, 2);
        assert_eq!(inst.job_count(), 40);
        for j in inst.jobs() {
            assert!(j.release >= 0 && j.release < 50);
            assert!(j.deadline - j.release <= 10);
        }
    }

    #[test]
    fn feasible_is_feasible() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = feasible(&mut rng, 30, 20, 4, 2);
            assert!(gaps_core::edf::is_feasible(&inst), "seed {seed}");
        }
    }

    #[test]
    fn feasible_single_processor_tight() {
        let mut rng = StdRng::seed_from_u64(7);
        let inst = feasible(&mut rng, 10, 10, 0, 1);
        assert!(gaps_core::edf::is_feasible(&inst));
        // Zero slack: windows are single slots.
        assert!(inst.jobs().iter().all(|j| j.release == j.deadline));
    }

    #[test]
    fn bursty_layout() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = bursty(&mut rng, 3, 4, 6, 10, 3, 1);
        assert_eq!(inst.job_count(), 12);
        // Jobs of burst b live in [b·16, b·16 + 6).
        for (i, j) in inst.jobs().iter().enumerate() {
            let b = (i / 4) as Time;
            assert!(j.release >= b * 16 && j.deadline < b * 16 + 6);
        }
    }

    #[test]
    fn fixed_laxity_window_lengths() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = fixed_laxity(&mut rng, 25, 30, 4, 1);
        assert!(inst.jobs().iter().all(|j| j.deadline - j.release == 4));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = uniform(&mut StdRng::seed_from_u64(42), 10, 20, 5, 2);
        let b = uniform(&mut StdRng::seed_from_u64(42), 10, 20, 5, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn feasible_rejects_overload() {
        let mut rng = StdRng::seed_from_u64(0);
        feasible(&mut rng, 50, 10, 2, 2);
    }
}

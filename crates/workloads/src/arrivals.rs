//! Stochastic arrival processes: Bernoulli (discrete Poisson-like)
//! arrivals with laxity, and diurnal load patterns. These produce the
//! gap-rich traces that make sleep decisions interesting — the regime the
//! paper's power model targets.
//!
//! The second half of this module generates *online arrival streams*:
//! bare, strictly increasing arrival times (no windows — an online job
//! must run the slot it is revealed) for the serve daemon's `SESSION`
//! verbs and `gaps batch --replay-online`. Both front ends must replay
//! the identical stream for their ratio lines to compare bit for bit,
//! so the seeded generator and its text format live here, next to the
//! other shared workload sources.

use gaps_core::instance::{Instance, Job};
use gaps_core::time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bernoulli arrivals: at every slot of `[0, horizon)`, each of up to
/// `max_per_slot` independent sources releases a job with probability
/// `rate`; each job gets a window of `laxity + 1` slots. The expected
/// load is `rate · max_per_slot / p` per processor-slot.
pub fn bernoulli(
    rng: &mut impl Rng,
    horizon: Time,
    rate: f64,
    max_per_slot: u32,
    laxity: Time,
    processors: u32,
) -> Instance {
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    assert!(horizon >= 1 && laxity >= 0);
    let mut jobs = Vec::new();
    for t in 0..horizon {
        for _ in 0..max_per_slot {
            if rng.gen_bool(rate) {
                jobs.push(Job::new(t, t + laxity));
            }
        }
    }
    Instance::new(jobs, processors).expect("valid windows")
}

/// Diurnal pattern: arrival probability alternates between `day_rate`
/// (for `day_len` slots) and `night_rate` (for `night_len` slots) over
/// `cycles` periods — the day/night load shape of real device traces.
#[allow(clippy::too_many_arguments)]
pub fn diurnal(
    rng: &mut impl Rng,
    cycles: usize,
    day_len: Time,
    night_len: Time,
    day_rate: f64,
    night_rate: f64,
    laxity: Time,
    processors: u32,
) -> Instance {
    assert!(day_len >= 1 && night_len >= 0 && cycles >= 1);
    let mut jobs = Vec::new();
    let period = day_len + night_len;
    for c in 0..cycles as Time {
        let base = c * period;
        for t in 0..period {
            let rate = if t < day_len { day_rate } else { night_rate };
            if rng.gen_bool(rate) {
                jobs.push(Job::new(base + t, base + t + laxity));
            }
        }
    }
    Instance::new(jobs, processors).expect("valid windows")
}

/// Shape of the inter-arrival gaps in a generated online stream. Every
/// pattern draws gaps ≥ 1, so streams are strictly increasing by
/// construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// Gaps uniform in `1..=max_gap` — the unstructured baseline.
    Uniform {
        /// Largest inter-arrival gap drawn.
        max_gap: u64,
    },
    /// Runs of `burst` back-to-back arrivals (gap 1) separated by long
    /// pauses uniform in `1..=spread` — the day/night shape where sleep
    /// decisions pay off.
    Bursty {
        /// Arrivals per back-to-back run.
        burst: usize,
        /// Largest pause between runs.
        spread: u64,
    },
    /// Power-of-two gaps, each exponent equally likely up to
    /// `log2(max_gap)` — many tiny gaps, a fat tail of huge ones, so a
    /// threshold policy sees both sides of its boundary.
    HeavyTail {
        /// Cap on the largest gap (rounded down to a power of two).
        max_gap: u64,
    },
}

impl ArrivalPattern {
    /// Resolve a pattern by its CLI name, with `max_gap` as the single
    /// shared scale knob (bursty uses it as the pause spread).
    pub fn parse(name: &str, max_gap: u64) -> Result<ArrivalPattern, String> {
        if max_gap == 0 {
            return Err("max gap must be at least 1".to_string());
        }
        match name {
            "uniform" => Ok(ArrivalPattern::Uniform { max_gap }),
            "bursty" => Ok(ArrivalPattern::Bursty {
                burst: 4,
                spread: max_gap,
            }),
            "heavy" | "heavy-tail" => Ok(ArrivalPattern::HeavyTail { max_gap }),
            other => Err(format!(
                "unknown arrival pattern {other:?} (choose uniform|bursty|heavy)"
            )),
        }
    }

    fn gap(&self, rng: &mut StdRng, index: usize) -> u64 {
        match *self {
            ArrivalPattern::Uniform { max_gap } => rng.gen_range(1..=max_gap),
            ArrivalPattern::Bursty { burst, spread } => {
                if index.is_multiple_of(burst.max(1)) {
                    rng.gen_range(1..=spread)
                } else {
                    1
                }
            }
            ArrivalPattern::HeavyTail { max_gap } => {
                let top = 63 - max_gap.leading_zeros();
                1 << rng.gen_range(0..=top)
            }
        }
    }
}

/// Generate a strictly increasing online arrival stream: `n` arrival
/// times starting at slot 0, gaps drawn per `pattern` from a
/// `StdRng` seeded with `seed`. Deterministic: the same
/// `(seed, n, pattern)` always yields the same stream, which is what
/// lets serve and `--replay-online` compare ratio lines byte for byte.
pub fn seeded_arrivals(seed: u64, n: usize, pattern: &ArrivalPattern) -> Vec<Time> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut t: Time = 0;
    for index in 0..n {
        out.push(t);
        t += pattern.gap(&mut rng, index + 1) as Time;
    }
    out
}

/// Serialize one arrival stream as an `arrivals v1` block — the text
/// format both `gaps generate --kind arrivals` emits and
/// `gaps batch --replay-online` consumes.
pub fn arrivals_to_text(arrivals: &[Time]) -> String {
    let mut out = String::from("arrivals v1\n");
    for t in arrivals {
        out.push_str(&format!("arrive {t}\n"));
    }
    out
}

/// Parse a text of one or more `arrivals v1` blocks back into streams
/// (one replayed session per block). Blank lines and `#` comments are
/// skipped; arrivals must be non-negative and strictly increasing
/// within a block — the same "time only moves forward" rule the live
/// `SESSION arrive` verb enforces.
pub fn arrival_streams_from_text(text: &str) -> Result<Vec<Vec<Time>>, String> {
    let mut streams: Vec<Vec<Time>> = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "arrivals v1" {
            streams.push(Vec::new());
            continue;
        }
        let Some(value) = line.strip_prefix("arrive ") else {
            return Err(format!(
                "line {}: expected `arrivals v1` or `arrive <t>`, got {line:?}",
                no + 1
            ));
        };
        let t: Time = value
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad arrival time {value:?}", no + 1))?;
        if t < 0 {
            return Err(format!("line {}: arrival time {t} is negative", no + 1));
        }
        let Some(stream) = streams.last_mut() else {
            return Err(format!(
                "line {}: `arrive` before any `arrivals v1` header",
                no + 1
            ));
        };
        if let Some(&last) = stream.last() {
            if t <= last {
                return Err(format!(
                    "line {}: arrival {t} does not increase past {last} (streams are strictly increasing)",
                    no + 1
                ));
            }
        }
        stream.push(t);
    }
    Ok(streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_respects_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = bernoulli(&mut rng, 50, 0.3, 2, 4, 1);
        for j in inst.jobs() {
            assert!(j.release >= 0 && j.release < 50);
            assert_eq!(j.deadline - j.release, 4);
        }
        // Expected ~30 jobs; allow wide slack.
        assert!(inst.job_count() > 10 && inst.job_count() < 60);
    }

    #[test]
    fn bernoulli_rate_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(bernoulli(&mut rng, 20, 0.0, 3, 1, 1).job_count(), 0);
        assert_eq!(bernoulli(&mut rng, 20, 1.0, 2, 1, 1).job_count(), 40);
    }

    #[test]
    fn diurnal_concentrates_load_in_days() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = diurnal(&mut rng, 4, 10, 10, 0.8, 0.05, 2, 1);
        let day_jobs = inst
            .jobs()
            .iter()
            .filter(|j| j.release.rem_euclid(20) < 10)
            .count();
        assert!(
            day_jobs * 3 > inst.job_count() * 2,
            "most jobs should arrive during the day: {day_jobs}/{}",
            inst.job_count()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = bernoulli(&mut StdRng::seed_from_u64(9), 30, 0.4, 1, 2, 2);
        let b = bernoulli(&mut StdRng::seed_from_u64(9), 30, 0.4, 1, 2, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_rate() {
        let mut rng = StdRng::seed_from_u64(0);
        bernoulli(&mut rng, 10, 1.5, 1, 1, 1);
    }

    #[test]
    fn arrival_patterns_parse_by_name() {
        assert_eq!(
            ArrivalPattern::parse("uniform", 9),
            Ok(ArrivalPattern::Uniform { max_gap: 9 })
        );
        assert_eq!(
            ArrivalPattern::parse("bursty", 12),
            Ok(ArrivalPattern::Bursty {
                burst: 4,
                spread: 12
            })
        );
        assert_eq!(
            ArrivalPattern::parse("heavy", 16),
            Ok(ArrivalPattern::HeavyTail { max_gap: 16 })
        );
        assert!(ArrivalPattern::parse("uniform", 0).is_err());
        let err = ArrivalPattern::parse("poissonish", 4).unwrap_err();
        assert!(err.contains("poissonish"), "{err}");
    }

    #[test]
    fn seeded_arrivals_are_deterministic_and_strictly_increasing() {
        for pattern in [
            ArrivalPattern::Uniform { max_gap: 7 },
            ArrivalPattern::Bursty {
                burst: 4,
                spread: 20,
            },
            ArrivalPattern::HeavyTail { max_gap: 64 },
        ] {
            let a = seeded_arrivals(41, 200, &pattern);
            let b = seeded_arrivals(41, 200, &pattern);
            assert_eq!(a, b, "{pattern:?}");
            assert_eq!(a.len(), 200);
            assert_eq!(a[0], 0, "streams start at slot 0");
            assert!(
                a.windows(2).all(|w| w[0] < w[1]),
                "{pattern:?} must be strictly increasing"
            );
            let c = seeded_arrivals(42, 200, &pattern);
            assert_ne!(a, c, "different seeds explore different streams");
        }
    }

    #[test]
    fn bursty_streams_alternate_runs_and_pauses() {
        let pattern = ArrivalPattern::Bursty {
            burst: 4,
            spread: 50,
        };
        let stream = seeded_arrivals(7, 40, &pattern);
        let unit_gaps = stream.windows(2).filter(|w| w[1] - w[0] == 1).count();
        // 3 of every 4 gaps are within-burst unit gaps.
        assert!(unit_gaps >= 25, "bursts missing: {unit_gaps} unit gaps");
    }

    #[test]
    fn arrival_text_round_trips() {
        let stream = seeded_arrivals(3, 50, &ArrivalPattern::Uniform { max_gap: 5 });
        let text = arrivals_to_text(&stream);
        assert!(text.starts_with("arrivals v1\narrive 0\n"));
        let parsed = arrival_streams_from_text(&text).expect("own output parses");
        assert_eq!(parsed, vec![stream.clone()]);
        // Multiple blocks, comments, and blank lines.
        let doubled = format!("# seed 3\n{text}\n{}", arrivals_to_text(&stream[..3]));
        let parsed = arrival_streams_from_text(&doubled).expect("two blocks parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], stream);
        assert_eq!(parsed[1], stream[..3]);
    }

    #[test]
    fn malformed_arrival_text_is_refused_with_line_numbers() {
        for (text, want) in [
            ("arrive 3\n", "before any"),
            ("arrivals v1\narrive x\n", "bad arrival time"),
            ("arrivals v1\narrive -2\n", "negative"),
            ("arrivals v1\narrive 5\narrive 5\n", "strictly increasing"),
            ("arrivals v1\narrive 5\narrive 4\n", "strictly increasing"),
            ("arrivals v1\ndepart 4\n", "expected"),
        ] {
            let err = arrival_streams_from_text(text).unwrap_err();
            assert!(err.contains(want), "{text:?} -> {err}");
            assert!(err.starts_with("line "), "{err}");
        }
    }
}

//! Stochastic arrival processes: Bernoulli (discrete Poisson-like)
//! arrivals with laxity, and diurnal load patterns. These produce the
//! gap-rich traces that make sleep decisions interesting — the regime the
//! paper's power model targets.

use gaps_core::instance::{Instance, Job};
use gaps_core::time::Time;
use rand::Rng;

/// Bernoulli arrivals: at every slot of `[0, horizon)`, each of up to
/// `max_per_slot` independent sources releases a job with probability
/// `rate`; each job gets a window of `laxity + 1` slots. The expected
/// load is `rate · max_per_slot / p` per processor-slot.
pub fn bernoulli(
    rng: &mut impl Rng,
    horizon: Time,
    rate: f64,
    max_per_slot: u32,
    laxity: Time,
    processors: u32,
) -> Instance {
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    assert!(horizon >= 1 && laxity >= 0);
    let mut jobs = Vec::new();
    for t in 0..horizon {
        for _ in 0..max_per_slot {
            if rng.gen_bool(rate) {
                jobs.push(Job::new(t, t + laxity));
            }
        }
    }
    Instance::new(jobs, processors).expect("valid windows")
}

/// Diurnal pattern: arrival probability alternates between `day_rate`
/// (for `day_len` slots) and `night_rate` (for `night_len` slots) over
/// `cycles` periods — the day/night load shape of real device traces.
#[allow(clippy::too_many_arguments)]
pub fn diurnal(
    rng: &mut impl Rng,
    cycles: usize,
    day_len: Time,
    night_len: Time,
    day_rate: f64,
    night_rate: f64,
    laxity: Time,
    processors: u32,
) -> Instance {
    assert!(day_len >= 1 && night_len >= 0 && cycles >= 1);
    let mut jobs = Vec::new();
    let period = day_len + night_len;
    for c in 0..cycles as Time {
        let base = c * period;
        for t in 0..period {
            let rate = if t < day_len { day_rate } else { night_rate };
            if rng.gen_bool(rate) {
                jobs.push(Job::new(base + t, base + t + laxity));
            }
        }
    }
    Instance::new(jobs, processors).expect("valid windows")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_respects_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = bernoulli(&mut rng, 50, 0.3, 2, 4, 1);
        for j in inst.jobs() {
            assert!(j.release >= 0 && j.release < 50);
            assert_eq!(j.deadline - j.release, 4);
        }
        // Expected ~30 jobs; allow wide slack.
        assert!(inst.job_count() > 10 && inst.job_count() < 60);
    }

    #[test]
    fn bernoulli_rate_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(bernoulli(&mut rng, 20, 0.0, 3, 1, 1).job_count(), 0);
        assert_eq!(bernoulli(&mut rng, 20, 1.0, 2, 1, 1).job_count(), 40);
    }

    #[test]
    fn diurnal_concentrates_load_in_days() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = diurnal(&mut rng, 4, 10, 10, 0.8, 0.05, 2, 1);
        let day_jobs = inst
            .jobs()
            .iter()
            .filter(|j| j.release.rem_euclid(20) < 10)
            .count();
        assert!(
            day_jobs * 3 > inst.job_count() * 2,
            "most jobs should arrive during the day: {day_jobs}/{}",
            inst.job_count()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = bernoulli(&mut StdRng::seed_from_u64(9), 30, 0.4, 1, 2, 2);
        let b = bernoulli(&mut StdRng::seed_from_u64(9), 30, 0.4, 1, 2, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_rate() {
        let mut rng = StdRng::seed_from_u64(0);
        bernoulli(&mut rng, 10, 1.5, 1, 1, 1);
    }
}

//! Canned instance *streams*: seeded, family-complete batch inputs in
//! the [`crate::serialize`] text format.
//!
//! The engine-batch differential suite and the serve parity suite must
//! feed the same instances to different front ends (`gaps batch` over
//! stdin, `gaps serve` over TCP) and compare results bit for bit. That
//! only works if both sides draw from one generator — so it lives here,
//! next to the families it samples, instead of being copy-pasted into
//! each harness.

use crate::{adversarial, arrivals, multi_interval, one_interval, serialize};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded stream touching every generator family in this crate
/// (one-interval, multi-interval, stochastic arrivals, adversarial):
/// 14 instances per round, plus exact duplicates of every 25th chunk so
/// cache paths are exercised. `mixed_stream(72)` yields the canonical
/// ~1,000-instance suite input; smaller `rounds` values are prefixes of
/// the same families (not of the same byte stream).
///
/// Sizes are kept small enough that the multi-interval instances stay
/// inside the exhaustive-search limits, so values remain independently
/// checkable.
pub fn mixed_stream(rounds: usize) -> String {
    let mut rng = StdRng::seed_from_u64(2026);
    let mut chunks: Vec<String> = Vec::new();
    let one = |inst| serialize::instance_to_text(&inst);
    let multi = |inst| serialize::multi_to_text(&inst);
    for round in 0..rounds {
        chunks.push(one(one_interval::uniform(&mut rng, 7, 14, 3, 2)));
        chunks.push(one(one_interval::feasible(&mut rng, 8, 16, 2, 1)));
        chunks.push(one(one_interval::bursty(&mut rng, 2, 3, 6, 2, 2, 2)));
        chunks.push(one(one_interval::fixed_laxity(&mut rng, 8, 18, 0, 1)));
        chunks.push(one(arrivals::bernoulli(&mut rng, 12, 0.4, 2, 2, 2)));
        chunks.push(one(arrivals::diurnal(&mut rng, 2, 5, 4, 0.7, 0.1, 2, 1)));
        chunks.push(one(adversarial::online_lower_bound(3 + round % 3)));
        chunks.push(one(adversarial::online_lower_bound_punisher(3)));
        chunks.push(multi(multi_interval::random_slots(&mut rng, 6, 12, 2)));
        chunks.push(multi(multi_interval::feasible_slots(&mut rng, 7, 10, 1)));
        chunks.push(multi(multi_interval::k_interval(&mut rng, 5, 12, 2, 2)));
        chunks.push(multi(multi_interval::two_unit(&mut rng, 6, 10)));
        chunks.push(multi(multi_interval::disjoint_unit(&mut rng, 5, 3, 3)));
        chunks.push(multi(adversarial::consultant(&mut rng, 3, 5, 6, 2, 2)));
    }
    // Duplicates: repeat every 25th chunk verbatim (cache hits must not
    // perturb output).
    let dups: Vec<String> = chunks.iter().step_by(25).cloned().collect();
    chunks.extend(dups);
    chunks.concat()
}

/// Split a serialized stream back into per-instance chunks, each
/// starting at its `instance v1` / `multi v1` header line. This is the
/// framing clients of the serve protocol need: one chunk per `REQ`.
pub fn instance_chunks(text: &str) -> Vec<String> {
    let mut chunks: Vec<String> = Vec::new();
    for line in text.lines() {
        if line == "instance v1" || line == "multi v1" {
            chunks.push(String::new());
        }
        if let Some(chunk) = chunks.last_mut() {
            chunk.push_str(line);
            chunk.push('\n');
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_stream_is_deterministic_and_round_scaled() {
        assert_eq!(mixed_stream(3), mixed_stream(3));
        // 14 chunks per round + every-25th duplicates; each chunk is at
        // least one instance header.
        let text = mixed_stream(2);
        let headers = text
            .lines()
            .filter(|l| *l == "instance v1" || *l == "multi v1")
            .count();
        assert_eq!(headers, 2 * 14 + 2);
    }

    #[test]
    fn instance_chunks_reconstructs_the_stream() {
        let text = mixed_stream(3);
        let chunks = instance_chunks(&text);
        assert_eq!(chunks.len(), 3 * 14 + 2);
        assert_eq!(chunks.concat(), text, "chunking loses nothing");
    }

    #[test]
    fn mixed_stream_round_trips_through_the_serializer() {
        let text = mixed_stream(2);
        let mut blocks = 0;
        // Re-parse every serialized instance via the public parsers.
        let mut current = String::new();
        let flush = |current: &mut String, blocks: &mut usize| {
            if current.is_empty() {
                return;
            }
            if current.starts_with("instance v1") {
                serialize::instance_from_text(current).expect("one-interval parses");
            } else {
                serialize::multi_from_text(current).expect("multi-interval parses");
            }
            *blocks += 1;
            current.clear();
        };
        for line in text.lines() {
            if line == "instance v1" || line == "multi v1" {
                flush(&mut current, &mut blocks);
            }
            current.push_str(line);
            current.push('\n');
        }
        flush(&mut current, &mut blocks);
        assert_eq!(blocks, 2 * 14 + 2);
    }
}

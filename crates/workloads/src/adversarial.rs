//! Structured worst-case and story workloads from the paper.

use gaps_core::instance::{Instance, MultiInstance, MultiJob};
use gaps_core::time::Time;
use rand::Rng;

/// The Section 1 online lower-bound family: `n` flexible jobs (release 0,
/// deadline `3n`) plus `n` tight jobs at times `n, n+2, …` each due one
/// slot after release. Non-lazy EDF pays `n − 1` gaps; the offline
/// optimum pays 0 (experiment E12).
pub fn online_lower_bound(n: usize) -> Instance {
    let n_t = n as Time;
    let mut windows = Vec::with_capacity(2 * n);
    for _ in 0..n {
        windows.push((0, 3 * n_t));
    }
    for j in 0..n_t {
        let t = n_t + 2 * j;
        windows.push((t, t + 1));
    }
    Instance::from_windows(windows, 1).expect("valid windows")
}

/// The paper's companion adversary branch: if the online algorithm ever
/// idles while flexible work is pending, the adversary instead releases
/// `2n` tight back-to-back jobs from time `n` on, making lateness fatal.
/// Included so experiments can show why online algorithms cannot wait.
pub fn online_lower_bound_punisher(n: usize) -> Instance {
    let n_t = n as Time;
    let mut windows = Vec::with_capacity(3 * n);
    for _ in 0..n {
        windows.push((0, 3 * n_t));
    }
    for j in 0..2 * n_t {
        let t = n_t + j;
        windows.push((t, t));
    }
    Instance::from_windows(windows, 1).expect("valid windows")
}

/// The Section 6 consultant scenario: `days` working days of `day_len`
/// slots each (nights are unusable). Each task picks `windows_per_task`
/// random days and a random contiguous stretch of `stretch` slots within
/// each — "each job can be executed at specified times during specified
/// days". A budget of `k` gaps is a budget of `k` billable days
/// (experiment E11 and the `consultant` example).
pub fn consultant(
    rng: &mut impl Rng,
    days: usize,
    day_len: Time,
    tasks: usize,
    windows_per_task: usize,
    stretch: Time,
) -> MultiInstance {
    assert!(day_len >= stretch && stretch >= 1);
    assert!(days >= 1 && windows_per_task >= 1);
    let night = 3; // unusable separation between days
    let day_base = |d: usize| d as Time * (day_len + night);
    let jobs = (0..tasks)
        .map(|_| {
            let mut times = Vec::new();
            for _ in 0..windows_per_task {
                let d = rng.gen_range(0..days);
                let start = day_base(d) + rng.gen_range(0..=(day_len - stretch));
                times.extend(start..start + stretch);
            }
            MultiJob::new(times)
        })
        .collect();
    MultiInstance::new(jobs).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn online_family_shape() {
        let inst = online_lower_bound(4);
        assert_eq!(inst.job_count(), 8);
        // Flexible jobs first, then tight ones two slots apart.
        assert_eq!(inst.jobs()[0].deadline, 12);
        assert_eq!(inst.jobs()[4].release, 4);
        assert_eq!(inst.jobs()[5].release, 6);
        assert!(gaps_core::edf::is_feasible(&inst));
    }

    #[test]
    fn online_family_ratio_grows() {
        for n in [3usize, 6] {
            let inst = online_lower_bound(n);
            let (online, offline) = gaps_core::online::online_vs_offline_gaps(&inst).unwrap();
            assert_eq!(online, n as u64 - 1);
            assert_eq!(offline, 0);
        }
    }

    #[test]
    fn punisher_is_feasible_only_if_started_immediately() {
        let inst = online_lower_bound_punisher(3);
        // EDF (which never idles) survives it.
        assert!(gaps_core::edf::is_feasible(&inst));
    }

    #[test]
    fn consultant_slots_fall_within_days() {
        let mut rng = StdRng::seed_from_u64(21);
        let inst = consultant(&mut rng, 5, 8, 12, 2, 3);
        for job in inst.jobs() {
            for &t in job.times() {
                let within_day = t.rem_euclid(8 + 3);
                assert!(within_day < 8, "slot {t} falls into a night");
            }
        }
    }

    #[test]
    fn consultant_deterministic() {
        let a = consultant(&mut StdRng::seed_from_u64(1), 4, 6, 8, 2, 2);
        let b = consultant(&mut StdRng::seed_from_u64(1), 4, 6, 8, 2, 2);
        assert_eq!(a, b);
    }
}

//! # gaps-workloads
//!
//! Instance generators and (de)serialization for the `gap-scheduling`
//! experiments. The paper proves worst-case results but evaluates nothing;
//! the experiment suite (see `EXPERIMENTS.md`) therefore needs
//! reproducible workload families:
//!
//! * [`one_interval`] — random release/deadline jobs: uniform, bursty,
//!   laxity-controlled, and feasible-by-construction batches;
//! * [`multi_interval`] — random allowed-slot sets, k-interval jobs, and
//!   the restricted families of Section 5 (2-unit, disjoint-unit);
//! * [`adversarial`] — the Section 1 online lower-bound family and the
//!   Section 6 consultant scenario;
//! * [`setcover`] — random (B-)set-cover instances feeding the hardness
//!   gadgets of `gaps-reductions`;
//! * [`serialize`] — a small line-based text format for instances, so
//!   experiments can be dumped and replayed;
//! * [`streams`] — seeded, family-complete serialized streams shared by
//!   the batch and serve differential suites.
//!
//! All generators take a caller-provided RNG; use a seeded
//! `rand::rngs::StdRng` for reproducibility.

pub mod adversarial;
pub mod arrivals;
pub mod multi_interval;
pub mod one_interval;
pub mod serialize;
pub mod setcover;
pub mod streams;

//! Random set-cover instances feeding the hardness gadgets.

use gaps_setcover::SetCoverInstance;
use rand::Rng;

/// A random feasible set-cover instance: `sets` random subsets of size
/// `1..=max_size`, patched with singletons so every element is coverable.
pub fn random_cover(
    rng: &mut impl Rng,
    universe: u32,
    sets: usize,
    max_size: usize,
) -> SetCoverInstance {
    assert!(universe >= 1 && max_size >= 1);
    let mut collection: Vec<Vec<u32>> = (0..sets)
        .map(|_| {
            let size = rng.gen_range(1..=max_size);
            (0..size).map(|_| rng.gen_range(0..universe)).collect()
        })
        .collect();
    // Patch coverage.
    let mut covered = vec![false; universe as usize];
    for s in &collection {
        for &e in s {
            covered[e as usize] = true;
        }
    }
    for (e, c) in covered.iter().enumerate() {
        if !c {
            collection.push(vec![e as u32]);
        }
    }
    SetCoverInstance::new(universe, collection).expect("elements in range")
}

/// A random feasible **B**-set-cover instance (every set has size ≤ B) —
/// the source problem of Theorems 5 and 10.
pub fn random_b_cover(
    rng: &mut impl Rng,
    universe: u32,
    sets: usize,
    b: usize,
) -> SetCoverInstance {
    let inst = random_cover(rng, universe, sets, b);
    debug_assert!(inst.max_set_size() <= b);
    inst
}

/// The classic greedy-fooling family: universe of `2^k + 2^{k-1} + … `
/// arranged as two "row" sets (OPT = 2) and geometrically shrinking
/// "column" sets that greedy prefers, giving ratio Θ(k) = Θ(lg n).
pub fn greedy_trap(k: u32) -> SetCoverInstance {
    assert!((1..=16).contains(&k), "k in 1..=16 keeps sizes sane");
    // Columns of sizes 2^k, 2^(k-1), ..., 2: total n = 2^(k+1) - 2.
    let n: u32 = (1 << (k + 1)) - 2;
    let mut sets = Vec::new();
    let row0: Vec<u32> = (0..n).filter(|e| e % 2 == 0).collect();
    let row1: Vec<u32> = (0..n).filter(|e| e % 2 == 1).collect();
    sets.push(row0);
    sets.push(row1);
    let mut start = 0u32;
    for i in (1..=k).rev() {
        let size = 1u32 << i;
        sets.push((start..start + size).collect());
        start += size;
    }
    SetCoverInstance::new(n, sets).expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaps_setcover::{exact_min_cover, greedy_cover};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_cover_always_feasible() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_cover(&mut rng, 12, 6, 4);
            assert!(inst.is_feasible(), "seed {seed}");
        }
    }

    #[test]
    fn b_cover_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = random_b_cover(&mut rng, 10, 8, 3);
        assert!(inst.max_set_size() <= 3);
        assert!(inst.is_feasible());
    }

    #[test]
    fn greedy_trap_fools_greedy() {
        let inst = greedy_trap(3);
        let opt = exact_min_cover(&inst).unwrap();
        assert_eq!(opt.len(), 2, "the two rows cover everything");
        let greedy = greedy_cover(&inst).unwrap();
        assert!(greedy.len() >= 3, "greedy grabs the big columns first");
    }

    #[test]
    fn greedy_trap_ratio_grows_with_k() {
        let r3 = {
            let inst = greedy_trap(3);
            greedy_cover(&inst).unwrap().len() as f64 / 2.0
        };
        let r5 = {
            let inst = greedy_trap(5);
            greedy_cover(&inst).unwrap().len() as f64 / 2.0
        };
        assert!(r5 > r3, "ratio grows with k: {r3} vs {r5}");
    }
}

//! A small line-based text format for instances, for dumping and replaying
//! experiment inputs without external serialization crates.
//!
//! ```text
//! # one-interval, 2 processors, jobs "release deadline"
//! instance v1
//! processors 2
//! job 0 5
//! job 3 9
//! ```
//!
//! ```text
//! # multi-interval, jobs "t1 t2 ..."
//! multi v1
//! job 0 1 5
//! job 2
//! ```
//!
//! Lines starting with `#` and blank lines are ignored.

use gaps_core::instance::{Instance, Job, MultiInstance, MultiJob};
use gaps_core::time::Time;

/// Serialize a one-interval instance.
pub fn instance_to_text(inst: &Instance) -> String {
    let mut out = String::from("instance v1\n");
    out.push_str(&format!("processors {}\n", inst.processors()));
    for j in inst.jobs() {
        out.push_str(&format!("job {} {}\n", j.release, j.deadline));
    }
    out
}

/// Parse a one-interval instance.
pub fn instance_from_text(s: &str) -> Result<Instance, String> {
    let mut lines = meaningful_lines(s);
    expect_header(lines.next(), "instance v1")?;
    let mut processors: Option<u32> = None;
    let mut jobs = Vec::new();
    for (no, line) in lines {
        let mut words = line.split_whitespace();
        match words.next() {
            Some("processors") => {
                let p = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| format!("line {no}: bad processor count"))?;
                processors = Some(p);
            }
            Some("job") => {
                let r: Time = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| format!("line {no}: bad release"))?;
                let d: Time = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| format!("line {no}: bad deadline"))?;
                jobs.push(Job::new(r, d));
            }
            other => return Err(format!("line {no}: unexpected {other:?}")),
        }
    }
    let p = processors.ok_or("missing 'processors' line")?;
    Instance::new(jobs, p).map_err(|e| e.to_string())
}

/// Serialize a multi-interval instance.
pub fn multi_to_text(inst: &MultiInstance) -> String {
    let mut out = String::from("multi v1\n");
    for j in inst.jobs() {
        out.push_str("job");
        for t in j.times() {
            out.push_str(&format!(" {t}"));
        }
        out.push('\n');
    }
    out
}

/// Parse a multi-interval instance.
pub fn multi_from_text(s: &str) -> Result<MultiInstance, String> {
    let mut lines = meaningful_lines(s);
    expect_header(lines.next(), "multi v1")?;
    let mut jobs = Vec::new();
    for (no, line) in lines {
        let mut words = line.split_whitespace();
        if words.next() != Some("job") {
            return Err(format!("line {no}: expected 'job'"));
        }
        let times: Result<Vec<Time>, _> = words.map(|w| w.parse::<Time>()).collect();
        let times = times.map_err(|e| format!("line {no}: {e}"))?;
        jobs.push(MultiJob::new(times));
    }
    MultiInstance::new(jobs).map_err(|e| e.to_string())
}

/// Numbered, comment-stripped lines.
fn meaningful_lines(s: &str) -> impl Iterator<Item = (usize, &str)> {
    s.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

fn expect_header(got: Option<(usize, &str)>, want: &str) -> Result<(), String> {
    match got {
        Some((_, l)) if l == want => Ok(()),
        Some((no, l)) => Err(format!("line {no}: expected {want:?}, got {l:?}")),
        None => Err(format!("empty input; expected {want:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_roundtrip() {
        let inst = Instance::from_windows([(0, 5), (-3, 9), (7, 7)], 3).unwrap();
        let text = instance_to_text(&inst);
        let back = instance_from_text(&text).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn multi_roundtrip() {
        let inst = MultiInstance::from_times([vec![0, 1, 5], vec![2], vec![-4, 100]]).unwrap();
        let text = multi_to_text(&inst);
        let back = multi_from_text(&text).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header comment\n\ninstance v1\nprocessors 1\n# a job\njob 0 2\n";
        let inst = instance_from_text(text).unwrap();
        assert_eq!(inst.job_count(), 1);
    }

    #[test]
    fn errors_are_informative() {
        assert!(instance_from_text("").unwrap_err().contains("empty input"));
        assert!(instance_from_text("multi v1")
            .unwrap_err()
            .contains("expected"));
        assert!(instance_from_text("instance v1\nprocessors x")
            .unwrap_err()
            .contains("bad processor"));
        assert!(instance_from_text("instance v1\nprocessors 1\njob 5 1")
            .unwrap_err()
            .contains("empty window"));
        assert!(multi_from_text("multi v1\njob")
            .unwrap_err()
            .contains("no allowed"));
    }

    #[test]
    fn malformed_corpus_is_rejected_never_panics() {
        // Every entry must come back as a clean `Err` from both parsers
        // — this is the surface the serve daemon exposes to arbitrary
        // network bytes, so "reject, don't panic" is a hard contract.
        let corpus = [
            "",
            "\n\n\n",
            "# only comments\n# nothing else\n",
            "garbage v9\njob 0 1\n",
            "instance v2\nprocessors 1\n",
            "instance v1",
            "instance v1\nprocessors\n",
            "instance v1\nprocessors -1\n",
            "instance v1\nprocessors 0\njob 0 1\n",
            "instance v1\nprocessors 1\njob\n",
            "instance v1\nprocessors 1\njob 0\n",
            "instance v1\nprocessors 1\njob zero two\n",
            "instance v1\nprocessors 1\njob 99999999999999999999 3\n",
            "instance v1\nprocessors 1\nslot 0 1\n",
            "instance v1\ninstance v1\nprocessors 1\n",
            "multi v1\njob\n",
            "multi v1\njob 1 two\n",
            "multi v1\njob 1 -\n",
            "multi v1\nprocessors 2\n",
            "multi v1\njob 99999999999999999999\n",
            "processors 1\njob 0 1\n",
            "instance v1 processors 1 job 0 1",
            "REQ x instance v1",
        ];
        for (i, text) in corpus.iter().enumerate() {
            assert!(
                instance_from_text(text).is_err(),
                "corpus[{i}] must not parse as one-interval: {text:?}"
            );
            assert!(
                multi_from_text(text).is_err(),
                "corpus[{i}] must not parse as multi-interval: {text:?}"
            );
        }
    }

    #[test]
    fn empty_instances_roundtrip() {
        let inst = Instance::new(vec![], 2).unwrap();
        assert_eq!(instance_from_text(&instance_to_text(&inst)).unwrap(), inst);
        let multi = MultiInstance::new(vec![]).unwrap();
        assert_eq!(multi_from_text(&multi_to_text(&multi)).unwrap(), multi);
    }
}

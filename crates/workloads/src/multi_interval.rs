//! Random multi-interval workloads, including Section 5's restricted
//! families.

use gaps_core::instance::{MultiInstance, MultiJob};
use gaps_core::time::Time;
use rand::seq::SliceRandom;
use rand::Rng;

/// Each job gets `slots_per_job` allowed slots drawn uniformly (with
/// replacement, then deduplicated) from `[0, t_max]`. Feasibility is not
/// guaranteed.
pub fn random_slots(
    rng: &mut impl Rng,
    n: usize,
    t_max: Time,
    slots_per_job: usize,
) -> MultiInstance {
    assert!(slots_per_job >= 1);
    let jobs = (0..n)
        .map(|_| {
            MultiJob::new(
                (0..slots_per_job)
                    .map(|_| rng.gen_range(0..=t_max))
                    .collect(),
            )
        })
        .collect();
    MultiInstance::new(jobs).expect("non-empty slot sets")
}

/// Feasible-by-construction: job `i` owns a distinct anchor slot, plus
/// `extra` random slots. The anchors form a feasible schedule.
pub fn feasible_slots(rng: &mut impl Rng, n: usize, t_max: Time, extra: usize) -> MultiInstance {
    assert!(
        t_max + 1 >= n as Time,
        "need at least n distinct anchor slots"
    );
    let mut anchors: Vec<Time> = (0..=t_max).collect();
    anchors.shuffle(rng);
    let jobs = (0..n)
        .map(|i| {
            let mut times = vec![anchors[i]];
            times.extend((0..extra).map(|_| rng.gen_range(0..=t_max)));
            MultiJob::new(times)
        })
        .collect();
    let inst = MultiInstance::new(jobs).expect("non-empty");
    debug_assert!(gaps_core::feasibility::is_feasible(&inst));
    inst
}

/// Banded feasible family — the scaled multi-interval bench workload.
///
/// The timeline is split into `bands` runs of `band_len` slots separated
/// by width-3 dead zones; job `i` owns a distinct anchor slot (so the
/// instance is feasible by construction) plus `extra` random slots drawn
/// from a random band each. The run structure makes the exact solvers
/// work for their answer (gap/power optima depend on which bands end up
/// hosting jobs), which is what the `multi_exact`-vs-`brute_force`
/// comparison bench needs.
///
/// # Panics
/// Panics if the bands cannot seat `n` anchors.
pub fn banded(
    rng: &mut impl Rng,
    n: usize,
    bands: usize,
    band_len: Time,
    extra: usize,
) -> MultiInstance {
    assert!(bands >= 1 && band_len >= 1);
    assert!(
        bands as i64 * band_len >= n as i64,
        "need at least n anchor slots across the bands"
    );
    let stride = band_len + 3;
    let slot_of = |band: usize, off: Time| band as Time * stride + off;
    let mut anchors: Vec<Time> = (0..bands)
        .flat_map(|b| (0..band_len).map(move |o| slot_of(b, o)))
        .collect();
    anchors.shuffle(rng);
    let jobs = (0..n)
        .map(|i| {
            let mut times = vec![anchors[i]];
            for _ in 0..extra {
                let band = rng.gen_range(0..bands);
                times.push(slot_of(band, rng.gen_range(0..band_len)));
            }
            MultiJob::new(times)
        })
        .collect();
    let inst = MultiInstance::new(jobs).expect("non-empty");
    debug_assert!(gaps_core::feasibility::is_feasible(&inst));
    inst
}

/// Clustered decomposable family — the PR-10 decomposition bench
/// workload.
///
/// `clusters` independent banded sub-instances (each `n_per` jobs over
/// two `band_len`-slot bands) separated by dead zones at least `zone`
/// wide that **no** job window crosses. The exact solver's dead-zone
/// decomposition must peel this into at least `clusters` components (more
/// when an intra-cluster band boundary also goes uncrossed); an
/// undecomposed search faces the product state space. Feasible by
/// construction (each cluster is).
///
/// # Panics
/// Panics if two bands cannot seat `n_per` anchors, or `zone == 0`.
pub fn clustered(
    rng: &mut impl Rng,
    clusters: usize,
    n_per: usize,
    band_len: Time,
    extra: usize,
    zone: Time,
) -> MultiInstance {
    assert!(clusters >= 1 && zone >= 1);
    let stride = band_len + 3;
    let cluster_width = 2 * stride + zone;
    let mut jobs = Vec::with_capacity(clusters * n_per);
    for c in 0..clusters {
        let base = c as Time * cluster_width;
        let sub = banded(rng, n_per, 2, band_len, extra);
        jobs.extend(
            sub.jobs()
                .iter()
                .map(|j| MultiJob::new(j.times().iter().map(|&t| t + base).collect())),
        );
    }
    let inst = MultiInstance::new(jobs).expect("non-empty");
    debug_assert!(gaps_core::feasibility::is_feasible(&inst));
    inst
}

/// k-interval jobs: each job gets `intervals` maximal intervals of length
/// `interval_len`, with starts drawn from `[0, t_max]` (deduplicated and
/// possibly merging — the *at most* k of the paper's problem statements).
pub fn k_interval(
    rng: &mut impl Rng,
    n: usize,
    t_max: Time,
    intervals: usize,
    interval_len: Time,
) -> MultiInstance {
    assert!(intervals >= 1 && interval_len >= 1);
    let jobs = (0..n)
        .map(|_| {
            let mut times = Vec::new();
            for _ in 0..intervals {
                let s = rng.gen_range(0..=t_max);
                times.extend(s..s + interval_len);
            }
            MultiJob::new(times)
        })
        .collect();
    MultiInstance::new(jobs).expect("non-empty")
}

/// 2-unit family (Theorem 9's input): each job has at most two allowed
/// slots, spaced so every interval is a unit interval.
pub fn two_unit(rng: &mut impl Rng, n: usize, t_max: Time) -> MultiInstance {
    let jobs = (0..n)
        .map(|_| {
            let a = rng.gen_range(0..=t_max);
            if rng.gen_bool(0.3) {
                MultiJob::new(vec![a])
            } else {
                let b = rng.gen_range(0..=t_max);
                MultiJob::new(vec![a, b])
            }
        })
        .collect();
    MultiInstance::new(jobs).expect("non-empty")
}

/// Disjoint-unit family (Theorems 9/10): job `i` gets `slots_per_job`
/// slots in its private arithmetic strip, so allowed sets are pairwise
/// disjoint and all intervals unit (stride ≥ 2).
pub fn disjoint_unit(
    rng: &mut impl Rng,
    n: usize,
    slots_per_job: usize,
    stride: Time,
) -> MultiInstance {
    assert!(stride >= 2, "stride < 2 would create non-unit intervals");
    let strip = slots_per_job as Time * stride + stride;
    let jobs = (0..n)
        .map(|i| {
            let base = i as Time * strip;
            let mut times: Vec<Time> = Vec::with_capacity(slots_per_job);
            let mut cursor = base;
            for _ in 0..slots_per_job {
                cursor += rng.gen_range(2..=stride);
                times.push(cursor);
            }
            MultiJob::new(times)
        })
        .collect();
    let inst = MultiInstance::new(jobs).expect("non-empty");
    debug_assert!(inst.is_disjoint());
    debug_assert!(inst.is_unit_interval());
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_slots_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = random_slots(&mut rng, 20, 15, 3);
        assert_eq!(inst.job_count(), 20);
        for j in inst.jobs() {
            assert!(!j.times().is_empty() && j.times().len() <= 3);
            assert!(j.times().iter().all(|&t| (0..=15).contains(&t)));
        }
    }

    #[test]
    fn feasible_slots_is_feasible() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = feasible_slots(&mut rng, 12, 20, 2);
            assert!(gaps_core::feasibility::is_feasible(&inst), "seed {seed}");
        }
    }

    #[test]
    fn banded_is_feasible_with_expected_run_structure() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = banded(&mut rng, 14, 3, 8, 2);
            assert_eq!(inst.job_count(), 14);
            assert!(gaps_core::feasibility::is_feasible(&inst), "seed {seed}");
            // Every slot lies inside a band, never in a dead zone.
            for &t in &inst.slot_union() {
                assert!((0..3).any(|b| (0..8).contains(&(t - b * 11))), "slot {t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "anchor slots")]
    fn banded_rejects_undersized_bands() {
        let mut rng = StdRng::seed_from_u64(0);
        banded(&mut rng, 10, 2, 4, 1);
    }

    #[test]
    fn clustered_is_feasible_and_separated_by_uncrossed_zones() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = clustered(&mut rng, 4, 6, 8, 2, 5);
            assert_eq!(inst.job_count(), 24);
            assert!(gaps_core::feasibility::is_feasible(&inst), "seed {seed}");
            // No job reaches across a cluster boundary.
            let width = 2 * 11 + 5;
            for j in inst.jobs() {
                let cluster = j.times()[0] / width;
                assert!(
                    j.times().iter().all(|&t| t / width == cluster),
                    "seed {seed}: job crosses clusters: {:?}",
                    j.times()
                );
            }
        }
    }

    #[test]
    fn k_interval_interval_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = k_interval(&mut rng, 15, 40, 3, 2);
        assert!(inst.max_intervals_per_job() <= 3);
    }

    #[test]
    fn two_unit_classification() {
        let mut rng = StdRng::seed_from_u64(11);
        let inst = two_unit(&mut rng, 30, 25);
        assert!(inst.jobs().iter().all(|j| j.times().len() <= 2));
    }

    #[test]
    fn disjoint_unit_classification() {
        let mut rng = StdRng::seed_from_u64(13);
        let inst = disjoint_unit(&mut rng, 8, 3, 4);
        assert!(inst.is_disjoint());
        assert!(inst.is_unit_interval());
        // Disjoint-unit instances are always feasible (pick any slot each).
        assert!(gaps_core::feasibility::is_feasible(&inst));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn disjoint_unit_rejects_tight_stride() {
        let mut rng = StdRng::seed_from_u64(0);
        disjoint_unit(&mut rng, 3, 2, 1);
    }
}

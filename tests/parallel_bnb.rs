//! Golden pins for the PR-10 exact-solver levers: dead-zone component
//! decomposition and the work-stealing parallel branch-and-bound.
//!
//! The instance below is hand-built so every structural claim is
//! checkable on paper: three components separated by dead zones no job
//! window crosses, a coupled 5-job core whose every lower bound (the
//! union is one contiguous run) sits strictly below its optimum — so the
//! branch-and-bound *must* open nodes and cannot take the closed-form
//! shortcut — and two trivial satellites that decomposition should peel
//! off without search. Optima on all three objectives are pinned as
//! literals and cross-checked against the exhaustive reference.

use gap_scheduling::brute_force;
use gap_scheduling::engine::parallel::solve_multi_parallel;
use gap_scheduling::instance::MultiInstance;
use gap_scheduling::multi_exact::{self, MultiObjective};

/// Core: slots 0,1,8,9 are forced; one job covers the middle; the union
/// 0..=9 is contiguous, so span lower bounds say 1 while the optimum is
/// 2 ({0,1,2} + {8,9}). Satellites: a 2-job cluster at 40..=42 and a
/// singleton at 60, across dead zones of width 30 and 17.
fn coupled_instance() -> MultiInstance {
    MultiInstance::from_times([
        vec![0, 1],
        vec![0, 1],
        vec![8, 9],
        vec![8, 9],
        vec![2, 3, 4, 5, 6, 7],
        vec![40, 41],
        vec![41, 42],
        vec![60],
    ])
    .unwrap()
}

#[test]
fn golden_component_structure_and_optima() {
    let inst = coupled_instance();
    // Spans: core 2 + cluster 1 + singleton 1.
    let (res, stats) = multi_exact::solve_multi_stats(&inst, MultiObjective::Spans);
    let (spans, sched) = res.expect("feasible");
    assert_eq!(spans, 4);
    sched.verify(&inst).unwrap();
    assert_eq!(sched.span_count(), 4);
    assert_eq!(stats.component_jobs, vec![5, 2, 1], "decomposition shape");
    assert!(
        stats.nodes_expanded > 0,
        "the coupled core must defeat the closed-form shortcut: {stats:?}"
    );

    // Gaps = spans - 1 on a single processor.
    let (res, stats) = multi_exact::solve_multi_stats(&inst, MultiObjective::Gaps);
    let (gaps, _) = res.expect("feasible");
    assert_eq!(gaps, 3);
    assert_eq!(stats.component_jobs, vec![5, 2, 1]);

    // Power, α = 2: 8 busy slots + α for the first wake + three
    // between-span holes each clipped to α: 8 + 2 + 3·2 = 16.
    let (res, stats) = multi_exact::solve_multi_stats(&inst, MultiObjective::Power { alpha: 2 });
    let (power, sched) = res.expect("feasible");
    assert_eq!(power, 16);
    assert_eq!(gap_scheduling::power::power_cost_single(&sched, 2), 16);
    assert_eq!(stats.component_jobs, vec![5, 2, 1]);

    // Every pinned literal re-derived by the exhaustive reference.
    assert_eq!(brute_force::min_spans_multi(&inst).unwrap().0, 4);
    assert_eq!(brute_force::min_gaps_multi(&inst).unwrap().0, 3);
    assert_eq!(brute_force::min_power_multi(&inst, 2).unwrap().0, 16);
}

#[test]
fn thread_counts_one_two_eight_are_bit_identical() {
    let inst = coupled_instance();
    for objective in [
        MultiObjective::Gaps,
        MultiObjective::Spans,
        MultiObjective::Power { alpha: 2 },
    ] {
        let (sequential, _) = multi_exact::solve_multi_stats(&inst, objective);
        for threads in [1usize, 2, 8] {
            let (parallel, stats) = solve_multi_parallel(&inst, objective, threads);
            // Values AND witness schedules: the determinism contract is
            // byte-identical `gaps batch` output at any --threads.
            assert_eq!(
                parallel, sequential,
                "--threads {threads} diverged on {objective:?}"
            );
            if threads == 1 {
                assert_eq!(stats.subtree_steals, 0, "one worker cannot steal");
            }
            assert_eq!(stats.component_jobs, vec![5, 2, 1]);
        }
    }
}

#[test]
fn parallel_stats_account_for_the_subtree_fan_out() {
    let inst = coupled_instance();
    let (res, stats) = solve_multi_parallel(&inst, MultiObjective::Spans, 8);
    assert_eq!(res.expect("feasible").0, 4);
    // The coupled core's root frontier fans out into at least one
    // subtree task per root (closed satellite components contribute
    // none), every task expands nodes, and steals never exceed tasks.
    assert!(stats.subtree_tasks >= 1, "{stats:?}");
    assert!(stats.nodes_expanded > 0, "{stats:?}");
    assert!(stats.subtree_steals <= stats.subtree_tasks, "{stats:?}");
    assert!(stats.incumbent_updates <= stats.subtree_tasks, "{stats:?}");
}

/// A dead zone narrower than α must *not* be cut for the power
/// objective (a sleep decision spans it), while the span objective cuts
/// it — and both still agree with the exhaustive reference.
#[test]
fn objective_dependent_cuts_stay_exact() {
    let inst = MultiInstance::from_times([vec![0, 1], vec![4, 5], vec![5, 6]]).unwrap();
    let alpha = 6;
    let (_, span_stats) = multi_exact::solve_multi_stats(&inst, MultiObjective::Spans);
    assert_eq!(
        span_stats.component_jobs,
        vec![1, 2],
        "spans cut at the 2-wide zone"
    );
    let (res, power_stats) = multi_exact::solve_multi_stats(&inst, MultiObjective::Power { alpha });
    assert_eq!(
        power_stats.component_jobs,
        vec![3],
        "a zone narrower than α stays coupled under power"
    );
    assert_eq!(
        res.map(|(v, _)| v),
        brute_force::min_power_multi(&inst, alpha).map(|(v, _)| v)
    );
}

//! Integration tests encoding claims the paper makes *in prose*, beyond
//! the numbered theorems.

use gap_scheduling::brute_force::min_spans_multi;
use gap_scheduling::instance::Instance;
use gap_scheduling::multiproc_dp::min_span_schedule;
use gap_scheduling::workloads::one_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Section 2: "The p-processor problem can be seen as a special case of
/// the multi-interval problem, where each job has p intervals ... of the
/// form I, I + x, I + 2x, …" — laying the processors out one after
/// another on the timeline. With a period long enough that segments
/// cannot touch, the minimum span counts of the two views must coincide.
#[test]
fn section2_arithmetic_interval_correspondence() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = 1 + (seed % 3) as u32;
        let inst = one_interval::feasible(&mut rng, 5, 8, 2, p);
        let horizon = inst.horizon().unwrap();
        // Period with at least one dead slot between processor segments.
        let period = (horizon.end - horizon.start) + 5;
        let multi = inst.to_multi_interval_arithmetic(period);

        let dp = min_span_schedule(&inst).expect("feasible").spans;
        let (bf, _) = min_spans_multi(&multi).expect("same feasibility");
        assert_eq!(
            dp, bf,
            "seed {seed}: p-processor spans must equal laid-out multi-interval spans"
        );
    }
}

/// Section 1's two-job example of why multi-interval scheduling breaks
/// online algorithms: jobs with intervals {[0,1],[1,2]} and {[0,1],[2,3]}
/// — whichever runs at time 0, an adversarial third job can make the
/// choice wrong. Offline, both orders are feasible.
#[test]
fn section1_multi_interval_online_dilemma() {
    use gap_scheduling::instance::MultiInstance;
    // Base instance: both assignments feasible offline.
    let base = MultiInstance::from_times([vec![0, 1, 2], vec![0, 1, 2, 3]]).unwrap();
    assert!(gap_scheduling::feasibility::is_feasible(&base));

    // Branch A: a third job pinned at 1 punishes running job 0 at... the
    // point is that one completion is infeasible for each online choice.
    // If job 0 ran at 0 and job 1 must now run at 1 (third job takes 2-3):
    let branch_a = MultiInstance::from_times([vec![0], vec![1], vec![2], vec![3]]).unwrap();
    assert!(gap_scheduling::feasibility::is_feasible(&branch_a));
    // ... but four jobs confined to {1, 2} fail:
    let crunch = MultiInstance::from_times([vec![1, 2], vec![1, 2], vec![1, 2]]).unwrap();
    assert!(!gap_scheduling::feasibility::is_feasible(&crunch));
}

/// The abstract's headline for Theorem 1: "the running time of the dynamic
/// program is polynomial in both n and the number p of processors, not
/// e.g. n^O(p)". Growing p at fixed n must not blow up the DP's time.
#[test]
fn theorem1_no_exponential_p_dependence() {
    let mut rng = StdRng::seed_from_u64(99);
    let inst1 = one_interval::feasible(&mut rng, 8, 14, 2, 1);
    let time = |p: u32| {
        let inst = inst1.with_processors(p).unwrap();
        let start = std::time::Instant::now();
        let sol = min_span_schedule(&inst).expect("more processors never hurt feasibility");
        std::hint::black_box(sol.spans);
        start.elapsed().as_secs_f64()
    };
    // Warm up and measure. The bound allows ~p^5; an n^O(p) blow-up on
    // n = 8 would dwarf any polynomial envelope.
    let t1 = time(1).max(1e-5);
    let t4 = time(4).max(1e-5);
    assert!(
        t4 / t1 < 5_000.0,
        "p-dependence looks super-polynomial: t1 = {t1:.6}s, t4 = {t4:.6}s"
    );
}

/// The power-objective sanity sweep from Section 3's opening: "Every
/// schedule is within a 1 + α factor of optimal, because each job incurs
/// power consumption of either 1 ... or 1 + α".
#[test]
fn every_feasible_schedule_within_one_plus_alpha() {
    use gap_scheduling::power::power_cost_multiproc;
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let p = 1 + (seed % 2) as u32;
        let inst = one_interval::feasible(&mut rng, 7, 12, 3, p);
        for alpha in [1u64, 3, 6] {
            let any = gap_scheduling::edf::edf(&inst).unwrap();
            let opt = gap_scheduling::power_dp::min_power_value(&inst, alpha).unwrap();
            let cost = power_cost_multiproc(&any, p, alpha);
            assert!(
                cost <= (1 + alpha) * opt,
                "seed {seed}, alpha {alpha}: EDF {cost} vs (1+α)·OPT {}",
                (1 + alpha) * opt
            );
        }
    }
}

/// Instance ↔ schedule round-trip through every public constructor path:
/// windows, jobs, arithmetic view, serialization — the "no panics on the
/// happy path" smoke sweep.
#[test]
fn constructor_roundtrip_smoke() {
    use gap_scheduling::instance::{Job, MultiJob};
    use gap_scheduling::TimeInterval;
    let j = Job::new(2, 7);
    assert_eq!(j.window(), TimeInterval::new(2, 7));
    assert_eq!(j.window_len(), 6);
    let mj = MultiJob::from_intervals(&[TimeInterval::new(0, 1), TimeInterval::new(5, 5)]);
    assert_eq!(mj.intervals().len(), 2);
    let inst = Instance::new(vec![j], 2).unwrap();
    assert_eq!(inst.deadline_order(), vec![0]);
    let multi = inst.to_multi_interval(100);
    assert_eq!(multi.jobs()[0].times().len(), 6);
}

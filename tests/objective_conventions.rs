//! Integration tests pinning down the objective conventions across the
//! workspace — the places where the paper itself is loose (gaps vs spans
//! vs transitions; see DESIGN.md §2).

use gap_scheduling::instance::Instance;
use gap_scheduling::multiproc_dp::{min_gap_schedule, min_span_schedule};
use gap_scheduling::power_dp::min_power_value;
use gap_scheduling::workloads::one_interval;
use gap_scheduling::{baptiste, brute_force, edf, feasibility};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_feasible(seed: u64, n: usize, p: u32) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    one_interval::feasible(&mut rng, n, (2 * n) as i64, 3, p)
}

#[test]
fn gaps_equal_spans_minus_processors_used_everywhere() {
    for seed in 0..12u64 {
        let p = 1 + (seed % 3) as u32;
        let inst = random_feasible(seed, 7, p);
        for sched in [
            edf::edf(&inst).unwrap(),
            min_gap_schedule(&inst).unwrap().schedule,
            min_span_schedule(&inst).unwrap().schedule,
        ] {
            assert_eq!(
                sched.gap_count(p),
                sched.span_count(p) - sched.processors_used(p) as u64,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn gap_optimum_is_span_optimum_clamped_by_p() {
    for seed in 0..12u64 {
        let p = 1 + (seed % 4) as u32;
        let inst = random_feasible(seed + 50, 6, p);
        let spans = min_span_schedule(&inst).unwrap().spans;
        let gaps = min_gap_schedule(&inst).unwrap().gaps;
        assert_eq!(gaps, spans.saturating_sub(p as u64), "seed {seed}");
    }
}

#[test]
fn single_processor_gap_span_offset_is_one() {
    for seed in 0..10u64 {
        let inst = random_feasible(seed + 100, 8, 1);
        let spans = baptiste::min_spans_value(&inst).unwrap();
        let gaps = baptiste::min_gaps_value(&inst).unwrap();
        assert_eq!(spans, gaps + 1, "seed {seed}");
    }
}

#[test]
fn power_identities() {
    for seed in 0..10u64 {
        let p = 1 + (seed % 2) as u32;
        let inst = random_feasible(seed + 200, 6, p);
        let n = inst.job_count() as u64;
        // α = 0: power is exactly the execution time.
        assert_eq!(min_power_value(&inst, 0), Some(n));
        // Monotone and bounded: n + α ≤ power(α) ≤ n(1 + α).
        let mut prev = n;
        for alpha in 1..=6u64 {
            let pw = min_power_value(&inst, alpha).unwrap();
            assert!(pw >= prev, "power must be monotone in alpha (seed {seed})");
            assert!(pw >= n + alpha);
            assert!(pw <= n * (1 + alpha));
            prev = pw;
        }
    }
}

#[test]
fn power_equals_spans_scaling_for_huge_alpha() {
    // For α far beyond the horizon, bridging every gap is always cheaper
    // than a second wake-up, so the optimal power uses exactly G(p) ...
    // no: bridging merges wake-ups; with huge α the optimum pays
    // (processors-used) wake-ups and bridges everything in between. The
    // identity: power(α → ∞) = α·W + C where W = min possible wake-ups.
    // For a single processor W = 1 whenever feasible.
    for seed in 0..6u64 {
        let inst = random_feasible(seed + 300, 6, 1);
        let big = 1_000_000u64;
        let pw = min_power_value(&inst, big).unwrap();
        assert!(pw >= big, "at least one wake-up");
        assert!(
            pw < 2 * big,
            "never two wake-ups on one processor when bridging is possible"
        );
    }
}

#[test]
fn feasibility_is_consistent_across_all_deciders() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed + 400);
        // Unpatched uniform windows: often infeasible.
        let inst = one_interval::uniform(&mut rng, 7, 8, 2, 1);
        let by_edf = edf::is_feasible(&inst);
        let by_matching = feasibility::is_feasible(&inst.to_multi_interval(1000));
        let by_dp = min_span_schedule(&inst).is_some();
        let by_bf = brute_force::min_spans_multiproc(&inst).is_some();
        assert_eq!(by_edf, by_matching, "seed {seed}");
        assert_eq!(by_edf, by_dp, "seed {seed}");
        assert_eq!(by_edf, by_bf, "seed {seed}");
    }
}

#[test]
fn infeasible_instances_yield_errors_not_panics() {
    let inst = Instance::from_windows([(0, 0), (0, 0), (0, 0)], 2).unwrap();
    assert!(min_gap_schedule(&inst).is_none());
    assert!(min_span_schedule(&inst).is_none());
    assert!(min_power_value(&inst, 3).is_none());
    assert!(edf::edf(&inst).is_err());
    let single = inst.with_processors(1).unwrap();
    assert!(baptiste::min_gaps_value(&single).is_none());
    assert!(gap_scheduling::greedy_gap::greedy_gap_schedule(&single).is_none());
}

//! Golden regression tests: pinned optimal objective values for the
//! paper's worked examples and the adversarial workload families.
//!
//! The differential suite (`tests/solver_differential.rs`) proves the
//! optimized DPs equal exhaustive search on *random* instances; this file
//! pins the concrete optima of the named instances the repo's narrative
//! leans on, so a future solver edit that silently shifts an optimum
//! (e.g. an off-by-one in a pruning rule that random search misses)
//! fails loudly with the instance spelled out.
//!
//! If one of these assertions ever fails, the solver is wrong — these
//! values are exhaustively verified (each pinned value is re-derived from
//! `brute_force` in the same test where feasible). Do not re-pin without
//! understanding which algorithm change moved the optimum.

use gap_scheduling::workloads::{adversarial, multi_interval as multi_workloads};
use gap_scheduling::MultiInstance;
use gap_scheduling::{baptiste, brute_force, multi_exact, multiproc_dp, power_dp, Instance};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §1's online lower-bound family: offline OPT parks everything in one
/// span (0 gaps), which is exactly why non-lazy online algorithms paying
/// n − 1 gaps prove the Ω(n) gap ratio.
#[test]
fn online_lower_bound_family_offline_optima() {
    // (n, power at α = 2, power at α = 5); gaps = 0 and spans = 1 for all.
    let golden = [(3usize, 8u64, 11u64), (4, 10, 13), (5, 12, 15)];
    for (n, power_a2, power_a5) in golden {
        let inst = adversarial::online_lower_bound(n);
        assert_eq!(multiproc_dp::min_gap_value(&inst), Some(0), "n={n}");
        assert_eq!(multiproc_dp::min_span_value(&inst), Some(1), "n={n}");
        assert_eq!(power_dp::min_power_value(&inst, 2), Some(power_a2), "n={n}");
        assert_eq!(power_dp::min_power_value(&inst, 5), Some(power_a5), "n={n}");
        // One span of 2n unit jobs costs 2n + α; the pinned powers are
        // exactly that closed form.
        assert_eq!(power_a2, 2 * n as u64 + 2);
        assert_eq!(power_a5, 2 * n as u64 + 5);
    }
}

/// The §1 punisher branch: back-to-back tight jobs force one contiguous
/// block, so the optimum is always a single span.
#[test]
fn online_punisher_family_offline_optima() {
    let golden = [(2usize, 9u64), (3, 12)]; // (n, power at α = 3)
    for (n, power_a3) in golden {
        let inst = adversarial::online_lower_bound_punisher(n);
        assert_eq!(multiproc_dp::min_gap_value(&inst), Some(0), "n={n}");
        assert_eq!(multiproc_dp::min_span_value(&inst), Some(1), "n={n}");
        assert_eq!(power_dp::min_power_value(&inst, 3), Some(power_a3), "n={n}");
        assert_eq!(power_a3, 3 * n as u64 + 3, "one span of 3n jobs + α");
    }
}

/// The §6 consultant story workload (fixed seed): 8 tasks over 3 working
/// days. The optimum bills 2 days (2 spans = 1 gap under the multi
/// convention), and the brute-force reference agrees with every pin.
#[test]
fn consultant_workload_optima() {
    let mut rng = StdRng::seed_from_u64(7);
    let inst = adversarial::consultant(&mut rng, 3, 5, 8, 2, 2);
    assert_eq!(inst.slot_union().len(), 14, "workload drifted with the rng");

    let (gaps, gaps_witness) = brute_force::min_gaps_multi(&inst).expect("feasible");
    assert_eq!(gaps, 1);
    gaps_witness.verify(&inst).unwrap();
    let (spans, _) = brute_force::min_spans_multi(&inst).expect("feasible");
    assert_eq!(spans, 2);
    let (power_a2, _) = brute_force::min_power_multi(&inst, 2).expect("feasible");
    assert_eq!(power_a2, 12);
    let (power_a6, _) = brute_force::min_power_multi(&inst, 6).expect("feasible");
    assert_eq!(power_a6, 18);
}

/// The consultant workload again, through the *optimized* multi-interval
/// exact solver: `multi_exact` must reproduce every brute-force pin of
/// `consultant_workload_optima`, witnesses included.
#[test]
fn consultant_workload_optima_via_multi_exact() {
    let mut rng = StdRng::seed_from_u64(7);
    let inst = adversarial::consultant(&mut rng, 3, 5, 8, 2, 2);

    let (gaps, witness) = multi_exact::min_gaps_multi(&inst).expect("feasible");
    assert_eq!(gaps, 1);
    witness.verify(&inst).unwrap();
    assert_eq!(witness.gap_count(), 1);
    let (spans, _) = multi_exact::min_spans_multi(&inst).expect("feasible");
    assert_eq!(spans, 2);
    let (power_a2, _) = multi_exact::min_power_multi(&inst, 2).expect("feasible");
    assert_eq!(power_a2, 12);
    let (power_a6, _) = multi_exact::min_power_multi(&inst, 6).expect("feasible");
    assert_eq!(power_a6, 18);
}

/// Multi-interval worked examples with hand-derivable optima, pinned
/// through `multi_exact` and re-derived from `brute_force` in place.
#[test]
fn multi_interval_worked_example_optima() {
    // The Theorem 3 doc example: two 2-blocks ten slots apart. One gap
    // is unavoidable; power = 4 jobs + α + min(8, α).
    let blocks =
        MultiInstance::from_times([vec![0, 1], vec![0, 1], vec![10, 11], vec![10, 11]]).unwrap();
    assert_eq!(
        multi_exact::min_gaps_multi(&blocks).map(|(v, _)| v),
        Some(1)
    );
    for (alpha, golden) in [(0u64, 4u64), (2, 8), (4, 12), (9, 21)] {
        assert_eq!(
            multi_exact::min_power_multi(&blocks, alpha).map(|(v, _)| v),
            Some(golden),
            "alpha={alpha}"
        );
        assert_eq!(
            brute_force::min_power_multi(&blocks, alpha).map(|(v, _)| v),
            Some(golden),
            "alpha={alpha}: pin drifted from the reference"
        );
    }

    // A flexible job bridging two pinned neighbors: {0}, {3}, {1..4}.
    // The middle job cannot glue both sides; one gap of length 1 remains.
    let bridge = MultiInstance::from_times([vec![0], vec![3], vec![1, 2, 3, 4]]).unwrap();
    assert_eq!(
        multi_exact::min_gaps_multi(&bridge).map(|(v, _)| v),
        Some(1)
    );
    assert_eq!(
        multi_exact::min_power_multi(&bridge, 5).map(|(v, _)| v),
        brute_force::min_power_multi(&bridge, 5).map(|(v, _)| v),
    );

    // Infeasible pin: two jobs, one slot.
    let clash = MultiInstance::from_times([vec![6], vec![6]]).unwrap();
    assert_eq!(multi_exact::min_gaps_multi(&clash), None);
    assert_eq!(multi_exact::min_power_multi(&clash, 3), None);
}

/// The scaled banded bench family (fixed seed): the instances behind the
/// `multi_exact`-vs-`brute_force` speedup claim keep their optima pinned,
/// so a solver edit that silently shifts the family's answers (while
/// staying self-consistent) fails loudly here.
#[test]
fn banded_bench_family_optima() {
    let mut rng = StdRng::seed_from_u64(0x4D17B);
    let n12 = multi_workloads::banded(&mut rng, 12, 4, 5, 3);
    let n14 = multi_workloads::banded(&mut rng, 14, 3, 8, 2);

    let golden: [(&MultiInstance, u64, u64); 2] = [(&n12, 2, 18), (&n14, 3, 21)];
    for (inst, gaps, power_a2) in golden {
        let (g, w) = multi_exact::min_gaps_multi(inst).expect("feasible by construction");
        assert_eq!(g, gaps);
        w.verify(inst).unwrap();
        let (p, _) = multi_exact::min_power_multi(inst, 2).expect("feasible");
        assert_eq!(p, power_a2);
        // Re-derive both pins from the reference.
        assert_eq!(brute_force::min_gaps_multi(inst).map(|(v, _)| v), Some(g));
        assert_eq!(
            brute_force::min_power_multi(inst, 2).map(|(v, _)| v),
            Some(p)
        );
    }
}

/// The facade quickstart instance (six jobs, two processors).
#[test]
fn quickstart_instance_optima() {
    let inst = Instance::from_windows([(0, 2), (0, 2), (1, 4), (4, 6), (6, 6), (6, 8)], 2).unwrap();
    assert_eq!(multiproc_dp::min_gap_value(&inst), Some(0));
    assert_eq!(multiproc_dp::min_span_value(&inst), Some(2));
    assert_eq!(power_dp::min_power_value(&inst, 3), Some(10));
    // Cross-check against exhaustive search (small enough).
    assert_eq!(
        brute_force::min_spans_multiproc(&inst).map(|(v, _)| v),
        Some(2)
    );
    assert_eq!(
        brute_force::min_power_multiproc(&inst, 3).map(|(v, _)| v),
        Some(10)
    );
}

/// DESIGN.md §7's Lemma-1 counterexample ({0},{1},{2},{5} on p = 2): the
/// instance behind the repo's one documented deviation from the paper.
#[test]
fn lemma1_counterexample_optima() {
    let inst = Instance::from_windows([(0, 0), (1, 1), (2, 2), (5, 5)], 2).unwrap();
    assert_eq!(multiproc_dp::min_span_value(&inst), Some(2));
    assert_eq!(
        multiproc_dp::min_gap_value(&inst),
        Some(0),
        "run-spreading parks {{5}} on its own processor"
    );
    assert_eq!(power_dp::min_power_value(&inst, 1), Some(6));
    assert_eq!(power_dp::min_power_value(&inst, 4), Some(10));
}

/// A p = 1 worked example exercising the α sweep: forced busy slots
/// 0, 2-3, 5 with two flexible jobs; sleeping beats bridging at small α.
#[test]
fn single_processor_alpha_sweep_optima() {
    let inst = Instance::from_windows([(0, 7), (2, 3), (5, 5), (1, 6), (0, 0)], 1).unwrap();
    assert_eq!(multiproc_dp::min_gap_value(&inst), Some(1));
    assert_eq!(baptiste::min_gaps_value(&inst), Some(1));
    assert_eq!(power_dp::min_power_value(&inst, 2), Some(8));
    assert_eq!(power_dp::min_power_value(&inst, 9), Some(15));
    // α = 2: 5 jobs + wake-up + min(gap, α) = 5 + 2 + 1; α = 9: the gap
    // of length 1 is bridged, 5 + 9 + 1.
    assert_eq!(
        brute_force::min_power_multiproc(&inst, 2).map(|(v, _)| v),
        Some(8)
    );
    assert_eq!(
        brute_force::min_power_multiproc(&inst, 9).map(|(v, _)| v),
        Some(15)
    );
}

/// The paper's doc-example crossover (two pinned jobs 3 slots apart,
/// p = 1): sleep at α = 1, tie at α = 2, bridge at α = 5.
#[test]
fn bridging_crossover_optima() {
    let inst = Instance::from_windows([(0, 0), (3, 3)], 1).unwrap();
    for (alpha, golden) in [(1u64, 4u64), (2, 6), (5, 9)] {
        assert_eq!(
            power_dp::min_power_value(&inst, alpha),
            Some(golden),
            "alpha={alpha}"
        );
    }
}

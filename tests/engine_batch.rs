//! Cross-crate engine correctness: `gaps batch` output must be
//! byte-identical for any `--threads` value, and the values it reports
//! must bit-match direct `gaps-core` solver calls — on every workload
//! family `gaps-workloads` can generate.
//!
//! The thread-count check runs through the real binary (stdin → stdout),
//! because that is the surface the determinism promise is made on; the
//! solver cross-check runs through the library so it can compare against
//! reference solvers instance by instance. The reference path is chosen
//! to be *different* from the engine's routed path wherever possible
//! (e.g. the engine routes `p = 1` to Baptiste's DP or the forced-chain
//! fast path; the reference recomputes with the Theorem 1/2
//! multiprocessor DPs), so agreement is a genuine cross-validation, not
//! an identity.

use gap_scheduling::engine::{
    split_stream, BatchInstance, Engine, EngineConfig, Objective, RouterConfig,
};
use gap_scheduling::workloads::streams;
use gap_scheduling::{brute_force, multiproc_dp, power_dp};
use std::io::Write;
use std::process::{Command, Stdio};

/// The shared ~1,000-instance family-complete stream. It lives in
/// `gaps-workloads` (`streams::mixed_stream`) so the serve parity suite
/// feeds the byte-identical input to the daemon.
fn mixed_stream_text() -> String {
    streams::mixed_stream(72)
}

fn run_batch_cli(stream: &str, threads: &str, objective: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gaps"))
        .args([
            "batch",
            "--input",
            "-",
            "--threads",
            threads,
            "--objective",
            objective,
            "--alpha",
            "2",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gaps batch");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(stream.as_bytes())
        .expect("write stream");
    let out = child.wait_with_output().expect("gaps batch runs");
    assert!(
        out.status.success(),
        "gaps batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn cli_output_is_byte_identical_across_thread_counts() {
    let stream = mixed_stream_text();
    let instances = split_stream(&stream).expect("stream parses");
    assert!(
        instances.len() >= 1_000,
        "want a 1,000-instance stream, got {}",
        instances.len()
    );
    for objective in ["gaps", "power"] {
        let reference = run_batch_cli(&stream, "1", objective);
        assert_eq!(
            reference.lines().count(),
            instances.len(),
            "one line per instance"
        );
        for threads in ["2", "8"] {
            let out = run_batch_cli(&stream, threads, objective);
            assert_eq!(
                out, reference,
                "--threads {threads} output diverged for --objective {objective}"
            );
        }
    }
}

/// Reference payload computed with solvers the engine's router mostly
/// does *not* pick for the instance (multiprocessor DPs for `p = 1`
/// instances, exhaustive search for small multi-interval instances).
/// Returns `None` when no independent exact reference applies.
fn reference_value(inst: &BatchInstance, objective: Objective) -> Option<Option<u64>> {
    match inst {
        BatchInstance::One(one) => Some(match objective {
            Objective::Gaps => multiproc_dp::min_gap_value(one),
            Objective::Spans => multiproc_dp::min_span_value(one),
            Objective::Power { alpha } => power_dp::min_power_value(one, alpha),
        }),
        BatchInstance::Multi(multi) => {
            // Gate on the *brute-force* caps: inside them the oracle is
            // cheap and the engine (whichever exact path it routes to —
            // `multi_exact` by default) must bit-match it. Beyond them
            // the oracle is too slow even where the engine still answers
            // exactly via `multi_exact`.
            let cfg = RouterConfig::default();
            if multi.slot_union().len() > cfg.exact_max_slots
                || multi.job_count() > cfg.exact_max_jobs
            {
                return None;
            }
            Some(match objective {
                Objective::Gaps => brute_force::min_gaps_multi(multi).map(|(v, _)| v),
                Objective::Spans => brute_force::min_spans_multi(multi).map(|(v, _)| v),
                Objective::Power { alpha } => {
                    brute_force::min_power_multi(multi, alpha).map(|(v, _)| v)
                }
            })
        }
    }
}

#[test]
fn engine_values_bit_match_direct_solver_calls() {
    let stream = mixed_stream_text();
    // The full 1,000 would re-solve everything three times over; a
    // deterministic slice still covers every family (they interleave
    // with period 14 < 100).
    let instances: Vec<BatchInstance> = split_stream(&stream)
        .expect("stream parses")
        .into_iter()
        .take(100)
        .collect();
    for objective in [
        Objective::Gaps,
        Objective::Spans,
        Objective::Power { alpha: 2 },
    ] {
        let engine = Engine::new(EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        });
        let (lines, report) = engine.run_batch(&instances, objective);
        assert_eq!(report.requests, instances.len());
        let mut checked = 0;
        for (inst, line) in instances.iter().zip(&lines) {
            let payload = line
                .splitn(4, ' ')
                .nth(3)
                .unwrap_or_else(|| panic!("malformed line {line:?}"));
            match reference_value(inst, objective) {
                Some(Some(value)) => {
                    let expected = format!("{}={value} ", objective.label());
                    assert!(
                        payload.starts_with(&expected),
                        "engine said {payload:?}, reference value is {value} \
                         (objective {objective:?})"
                    );
                    checked += 1;
                }
                Some(None) => {
                    assert!(
                        payload.starts_with("infeasible"),
                        "engine said {payload:?}, reference says infeasible"
                    );
                    checked += 1;
                }
                None => {
                    // Bound-only answers still have a fixed shape.
                    let label = objective.label();
                    assert!(
                        payload.starts_with(&format!("{label}<="))
                            || payload.starts_with(&format!("{label}>="))
                            || payload.starts_with("infeasible"),
                        "unexpected fallback payload {payload:?}"
                    );
                }
            }
        }
        assert!(
            checked >= 80,
            "expected most of the slice to be exactly checkable, got {checked}"
        );
    }
}

#[test]
fn duplicate_instances_hit_the_cache_without_changing_output() {
    let stream = mixed_stream_text();
    let instances = split_stream(&stream).expect("stream parses");
    let doubled: Vec<BatchInstance> = instances
        .iter()
        .take(60)
        .chain(instances.iter().take(60))
        .cloned()
        .collect();
    let engine = Engine::new(EngineConfig {
        threads: 8,
        ..EngineConfig::default()
    });
    let (lines, report) = engine.run_batch(&doubled, Objective::Gaps);
    assert!(
        report.cache_hits >= 60,
        "second copy of each instance should hit the cache: {report}"
    );
    for i in 0..60 {
        let strip = |s: &str| s.split_once(' ').unwrap().1.to_string();
        assert_eq!(
            strip(&lines[i]),
            strip(&lines[i + 60]),
            "cached and solved payloads diverged at {i}"
        );
    }
}

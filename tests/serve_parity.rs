//! Serve ↔ batch parity through the real binary: a ~1,000-instance
//! `streams::mixed_stream` fed to `gaps serve` over TCP must produce,
//! request for request, the byte-identical result bodies `gaps batch`
//! prints for the same stream — at every thread count.
//!
//! This is the acceptance surface of the serving subsystem: the daemon
//! is a different front end to the same engine loop, not a different
//! engine.

use gap_scheduling::serve::protocol::encode_payload;
use gap_scheduling::workloads::streams;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn run_batch_cli(stream: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gaps"))
        .args([
            "batch",
            "--input",
            "-",
            "--threads",
            "1",
            "--objective",
            "gaps",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gaps batch");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(stream.as_bytes())
        .expect("write stream");
    let out = child.wait_with_output().expect("gaps batch runs");
    assert!(
        out.status.success(),
        "gaps batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// Start `gaps serve` on an ephemeral port; returns the child and the
/// address parsed from its `listening on …` stderr banner.
fn spawn_serve(threads: &str) -> (Child, BufReader<std::process::ChildStderr>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gaps"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--threads",
            threads,
            "--objective",
            "gaps",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gaps serve");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    (child, stderr, addr)
}

#[test]
fn serve_round_trip_bit_matches_gaps_batch_at_every_thread_count() {
    let stream = streams::mixed_stream(72);
    let chunks = streams::instance_chunks(&stream);
    assert!(chunks.len() >= 1_000, "want 1,000+, got {}", chunks.len());
    let reference = run_batch_cli(&stream);
    let expected: Vec<&str> = reference
        .lines()
        .map(|l| l.split_once(' ').expect("indexed line").1)
        .collect();
    assert_eq!(expected.len(), chunks.len(), "one batch line per chunk");

    for threads in ["1", "2", "8"] {
        let (mut child, mut stderr, addr) = spawn_serve(threads);
        let conn = TcpStream::connect(&addr).expect("connect to daemon");
        conn.set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        let mut writer = conn.try_clone().expect("clone write half");
        let mut reader = BufReader::new(conn);
        let recv = |reader: &mut BufReader<TcpStream>| {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).expect("read reply") > 0,
                "daemon closed the connection"
            );
            line.trim_end().to_string()
        };

        // Request in bounded bursts: the admission queue and the socket
        // buffers never have to hold the whole stream at once.
        let mut bodies: HashMap<String, String> = HashMap::new();
        for (burst_no, burst) in chunks.chunks(50).enumerate() {
            for (offset, chunk) in burst.iter().enumerate() {
                let id = burst_no * 50 + offset;
                let payload = encode_payload(chunk);
                writer
                    .write_all(format!("REQ i-{id} {payload}\n").as_bytes())
                    .expect("send request");
            }
            for _ in burst {
                let line = recv(&mut reader);
                let mut words = line.splitn(3, ' ');
                assert_eq!(words.next(), Some("RES"), "unexpected reply {line:?}");
                let id = words.next().expect("id").to_string();
                let body = words.next().expect("body").to_string();
                assert!(bodies.insert(id, body).is_none(), "duplicate reply");
            }
        }
        for (index, want) in expected.iter().enumerate() {
            assert_eq!(
                bodies.get(&format!("i-{index}")).map(String::as_str),
                Some(*want),
                "serve diverged from batch at instance {index} (threads {threads})"
            );
        }

        writer.write_all(b"DRAIN\n").expect("send drain");
        assert_eq!(recv(&mut reader), "DRAINING");
        let mut rest = String::new();
        stderr.read_to_string(&mut rest).expect("drain stderr");
        assert!(
            rest.contains("serve final:"),
            "daemon prints its final report: {rest:?}"
        );
        let status = child.wait().expect("daemon exits");
        assert!(
            status.success(),
            "clean exit after DRAIN (threads {threads})"
        );
    }
}

//! Online-session parity through the real binary: one seeded 500-job
//! arrival stream, replayed through both front ends —
//!
//! * live, over TCP, via the daemon's `SESSION begin/arrive/step/end`
//!   verbs (at several `--threads` values), and
//! * offline, via `gaps batch --replay-online`,
//!
//! must produce byte-identical `policy=… ratio=…` summary lines,
//! because both drive the same `gaps_engine::OnlineTracker`. The
//! realized ratio itself must respect the paper's ski-rental bound:
//! `Timeout(α)` never pays more than twice the offline optimum.

use gap_scheduling::workloads::arrivals::{arrivals_to_text, seeded_arrivals, ArrivalPattern};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const SEED: u64 = 2007;
const JOBS: usize = 500;
const ALPHA: u64 = 4;

/// The shared stream: gaps uniform in 1..=12 around the α=4 threshold,
/// so the policy sees bridged, break-even, and sleep-worthy gaps.
fn arrival_stream() -> Vec<i64> {
    seeded_arrivals(SEED, JOBS, &ArrivalPattern::Uniform { max_gap: 12 })
}

fn replay_via_batch(text: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gaps"))
        .args([
            "batch",
            "--input",
            "-",
            "--replay-online",
            "timeout",
            "--alpha",
            &ALPHA.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gaps batch --replay-online");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(text.as_bytes())
        .expect("write stream");
    let out = child.wait_with_output().expect("replay runs");
    assert!(
        out.status.success(),
        "replay failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    let mut lines = stdout.lines();
    let line = lines.next().expect("one summary line").to_string();
    assert_eq!(lines.next(), None, "exactly one line per arrivals block");
    line
}

/// Start `gaps serve` on an ephemeral port; returns the child and the
/// address parsed from its `listening on …` stderr banner.
fn spawn_serve(threads: &str) -> (Child, BufReader<std::process::ChildStderr>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gaps"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--threads",
            threads,
            "--max-threads",
            "8",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gaps serve");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    (child, stderr, addr)
}

/// Drive the stream through a live `SESSION` and return the summary
/// tail of the `SESSION end` reply.
fn replay_via_session(addr: &str, stream: &[i64]) -> String {
    let conn = TcpStream::connect(addr).expect("connect to daemon");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut writer = conn.try_clone().expect("clone write half");
    let mut reader = BufReader::new(conn);
    let recv = |reader: &mut BufReader<TcpStream>| {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read reply") > 0,
            "daemon closed the connection"
        );
        line.trim_end().to_string()
    };
    writer
        .write_all(format!("SESSION begin timeout {ALPHA}\n").as_bytes())
        .expect("begin");
    assert_eq!(
        recv(&mut reader),
        format!("SESSION begun policy=timeout alpha={ALPHA}")
    );
    // Bursts of 100 arrivals so neither socket buffer has to hold the
    // whole session at once.
    for burst in stream.chunks(100) {
        let mut lines = String::new();
        for t in burst {
            lines.push_str(&format!("SESSION arrive {t}\n"));
        }
        writer.write_all(lines.as_bytes()).expect("send arrivals");
        for _ in burst {
            let line = recv(&mut reader);
            assert!(line.starts_with("SESSION t="), "{line:?}");
        }
    }
    writer.write_all(b"SESSION end\n").expect("end");
    let line = recv(&mut reader);
    let summary = line
        .strip_prefix("SESSION end ")
        .unwrap_or_else(|| panic!("unexpected end reply {line:?}"))
        .to_string();
    writer.write_all(b"DRAIN\n").expect("drain");
    assert_eq!(recv(&mut reader), "DRAINING");
    summary
}

#[test]
fn live_sessions_bit_match_replay_online_at_every_thread_count() {
    let stream = arrival_stream();
    assert_eq!(stream.len(), JOBS);
    let reference = replay_via_batch(&arrivals_to_text(&stream));
    assert!(
        reference.starts_with(&format!("policy=timeout alpha={ALPHA} jobs={JOBS} online=")),
        "{reference}"
    );
    let ratio: f64 = reference
        .rsplit("ratio=")
        .next()
        .and_then(|v| v.parse().ok())
        .expect("ratio field parses");
    assert!(
        (1.0..=2.0).contains(&ratio),
        "Timeout(α) must stay within the ski-rental bound: {reference}"
    );

    for threads in ["1", "2", "8"] {
        let (mut child, mut stderr, addr) = spawn_serve(threads);
        let live = replay_via_session(&addr, &stream);
        assert_eq!(
            live, reference,
            "live SESSION diverged from --replay-online (threads {threads})"
        );
        let mut rest = String::new();
        stderr.read_to_string(&mut rest).expect("drain stderr");
        assert!(
            rest.contains("serve final:"),
            "daemon prints its final report: {rest:?}"
        );
        let status = child.wait().expect("daemon exits");
        assert!(
            status.success(),
            "clean exit after DRAIN (threads {threads})"
        );
    }
}

//! Cross-solver differential suite: the optimized exact DPs must bit-match
//! the (deliberately unoptimized) exhaustive reference on random instances.
//!
//! The hot-path engineering inside `multiproc_dp` / `power_dp` (interval
//! memoization, dominance pruning, flat state tables) is only safe if
//! optimality is continuously checked — this suite is that check. Every
//! run draws fresh random instances across the one-/multi-interval
//! models, processor counts 1..=4, and a sweep of α values, and demands
//! *exact* equality of optima (and of feasibility verdicts) against
//! `brute_force`. Witness schedules are verified against their instances
//! and their claimed objective values.
//!
//! Together the one-interval properties draw 640 instances per run — 160
//! cases each, comfortably over the ≥ 500 acceptance floor — and the
//! multi-interval block below adds 200 more, each checked on all three
//! objectives against the exhaustive reference; on failure the proptest
//! stub prints the case number and `PROPTEST_SEED` to replay it (see
//! README §Testing).

use gap_scheduling::instance::{Instance, MultiInstance};
use gap_scheduling::{baptiste, brute_force, multi_exact, multiproc_dp, power_dp};
use proptest::prelude::*;

/// Random one-interval instance: up to `n_max` jobs with windows inside
/// `[0, t_max]`, 1..=`p_max` processors.
fn arb_instance(n_max: usize, t_max: i64, p_max: u32) -> impl Strategy<Value = Instance> {
    (1..=p_max).prop_flat_map(move |p| {
        proptest::collection::vec((0..=t_max, 0..=t_max), 1..=n_max).prop_map(move |ws| {
            let jobs = ws
                .into_iter()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect::<Vec<_>>();
            Instance::from_windows(jobs, p).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Theorem 1 DP ≡ exhaustive search on both the span and the
    /// finite-gap objective, across processor counts.
    #[test]
    fn multiproc_dp_bit_matches_brute_force(inst in arb_instance(7, 9, 4)) {
        let p = inst.processors();
        let dp = multiproc_dp::min_span_schedule(&inst);
        let bf = brute_force::min_spans_multiproc(&inst);
        prop_assert_eq!(dp.is_some(), bf.is_some(), "span feasibility diverged");
        if let (Some(dp), Some((bf, _))) = (dp, bf) {
            prop_assert_eq!(dp.spans, bf, "span optimum diverged");
            dp.schedule.verify(&inst).unwrap();
            prop_assert_eq!(dp.schedule.span_count(p), dp.spans);
        }
        let dp = multiproc_dp::min_gap_schedule(&inst);
        let bf = brute_force::min_gaps_multiproc(&inst);
        prop_assert_eq!(dp.is_some(), bf.is_some(), "gap feasibility diverged");
        if let (Some(dp), Some((bf, _))) = (dp, bf) {
            prop_assert_eq!(dp.gaps, bf, "gap optimum diverged");
            dp.schedule.verify(&inst).unwrap();
            prop_assert_eq!(dp.schedule.gap_count(p), dp.gaps);
        }
    }

    /// Theorem 2 power DP ≡ exhaustive search across α (sleeping,
    /// crossover, and bridging regimes).
    #[test]
    fn power_dp_bit_matches_brute_force(inst in arb_instance(6, 8, 3), alpha in 0u64..8) {
        let dp = power_dp::min_power_schedule(&inst, alpha);
        let bf = brute_force::min_power_multiproc(&inst, alpha);
        prop_assert_eq!(dp.is_some(), bf.is_some(), "power feasibility diverged");
        if let (Some(dp), Some((bf, _))) = (dp, bf) {
            prop_assert_eq!(dp.power, bf, "power optimum diverged (alpha {})", alpha);
            dp.schedule.verify(&inst).unwrap();
        }
    }

    /// One-interval p = 1 instances re-solved through the *multi-interval*
    /// model: expanding each window to its allowed-slot set and running the
    /// multi-interval exhaustive solver must reproduce the DP optima (the
    /// two models count gaps identically at p = 1).
    #[test]
    fn single_processor_dp_matches_multi_interval_reference(inst in arb_instance(5, 7, 1)) {
        let multi = inst.to_multi_interval(100);
        let dp_gaps = multiproc_dp::min_gap_value(&inst);
        let bf_gaps = brute_force::min_gaps_multi(&multi).map(|(v, _)| v);
        prop_assert_eq!(dp_gaps, bf_gaps, "gap optimum diverged across models");
        for alpha in [0u64, 1, 3, 6] {
            let dp_power = power_dp::min_power_value(&inst, alpha);
            let bf_power = brute_force::min_power_multi(&multi, alpha).map(|(v, _)| v);
            prop_assert_eq!(dp_power, bf_power, "power optimum diverged (alpha {})", alpha);
        }
    }

    /// Baptiste's single-processor DP, the Theorem 1/2 DPs, and brute
    /// force agree pairwise at p = 1 — three independent implementations,
    /// one optimum.
    #[test]
    fn three_way_single_processor_agreement(inst in arb_instance(6, 9, 1), alpha in 0u64..6) {
        let spans_dp = multiproc_dp::min_span_value(&inst);
        prop_assert_eq!(spans_dp, baptiste::min_spans_value(&inst));
        prop_assert_eq!(
            spans_dp,
            brute_force::min_spans_multiproc(&inst).map(|(v, _)| v)
        );
        let power_dp_v = power_dp::min_power_value(&inst, alpha);
        prop_assert_eq!(power_dp_v, baptiste::min_power_value(&inst, alpha));
        prop_assert_eq!(
            power_dp_v,
            brute_force::min_power_multiproc(&inst, alpha).map(|(v, _)| v)
        );
    }
}

/// Random multi-interval instance: up to `n_max` jobs, each with 1..=
/// `k_max` allowed slots drawn from `[0, t_max]`. Infeasible draws are
/// kept — feasibility verdicts must match too.
fn arb_multi(n_max: usize, t_max: i64, k_max: usize) -> impl Strategy<Value = MultiInstance> {
    proptest::collection::vec(proptest::collection::vec(0..=t_max, 1..=k_max), 1..=n_max)
        .prop_map(|times| MultiInstance::from_times(times).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The optimized multi-interval exact solver (`multi_exact`: slot-sweep
    /// branch and bound, fasthash memo, dominance pruning, lower-bound
    /// cutoffs) must bit-match the exhaustive reference on **all three
    /// objectives** — 200 instances per objective per run. Witnesses are
    /// verified against their instances and claimed values.
    #[test]
    fn multi_exact_bit_matches_brute_force(inst in arb_multi(7, 16, 3), alpha in 0u64..8) {
        let me = multi_exact::min_gaps_multi(&inst);
        let bf = brute_force::min_gaps_multi(&inst);
        prop_assert_eq!(me.is_some(), bf.is_some(), "gap feasibility diverged");
        if let (Some((v, sched)), Some((bfv, _))) = (me, bf) {
            prop_assert_eq!(v, bfv, "gap optimum diverged");
            sched.verify(&inst).unwrap();
            prop_assert_eq!(sched.gap_count(), v);
        }

        let me = multi_exact::min_spans_multi(&inst);
        let bf = brute_force::min_spans_multi(&inst);
        prop_assert_eq!(me.is_some(), bf.is_some(), "span feasibility diverged");
        if let (Some((v, sched)), Some((bfv, _))) = (me, bf) {
            prop_assert_eq!(v, bfv, "span optimum diverged");
            sched.verify(&inst).unwrap();
            prop_assert_eq!(sched.span_count(), v);
        }

        let me = multi_exact::min_power_multi(&inst, alpha);
        let bf = brute_force::min_power_multi(&inst, alpha);
        prop_assert_eq!(me.is_some(), bf.is_some(), "power feasibility diverged");
        if let (Some((v, sched)), Some((bfv, _))) = (me, bf) {
            prop_assert_eq!(v, bfv, "power optimum diverged (alpha {})", alpha);
            sched.verify(&inst).unwrap();
            prop_assert_eq!(gap_scheduling::power::power_cost_single(&sched, alpha), v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The two PR-10 levers — dead-zone component decomposition and the
    /// work-stealing parallel branch-and-bound — must be invisible in the
    /// answers. 200 instances per run, each solved on all three
    /// objectives four ways: decomposed (the production path),
    /// undecomposed (single monolithic search), parallel at 2 and at 8
    /// workers. Values must agree everywhere; the parallel solver must
    /// additionally reproduce the sequential *schedule* bit for bit —
    /// that is the determinism contract `gaps batch --threads N` rests
    /// on. The wide `t_max` makes multi-component draws common.
    #[test]
    fn decomposition_and_parallelism_preserve_the_optimum(
        inst in arb_multi(7, 24, 3),
        alpha in 0u64..8,
    ) {
        use gap_scheduling::multi_exact::MultiObjective;
        for objective in [
            MultiObjective::Gaps,
            MultiObjective::Spans,
            MultiObjective::Power { alpha },
        ] {
            let (dec, stats) = multi_exact::solve_multi_stats(&inst, objective);
            let undec = multi_exact::solve_multi_undecomposed(&inst, objective);
            prop_assert_eq!(
                dec.as_ref().map(|(v, _)| *v),
                undec.as_ref().map(|(v, _)| *v),
                "decomposed vs undecomposed diverged ({:?})",
                objective
            );
            if let Some((value, sched)) = &dec {
                sched.verify(&inst).unwrap();
                prop_assert!(stats.component_jobs.iter().sum::<usize>() == inst.job_count());
                // Witness attains the claimed value under the objective.
                let attained = match objective {
                    MultiObjective::Gaps => sched.gap_count(),
                    MultiObjective::Spans => sched.span_count(),
                    MultiObjective::Power { alpha } => {
                        gap_scheduling::power::power_cost_single(sched, alpha)
                    }
                };
                prop_assert_eq!(attained, *value, "witness misses its value ({:?})", objective);
            }
            for threads in [2usize, 8] {
                let (par, _) =
                    gap_scheduling::engine::parallel::solve_multi_parallel(&inst, objective, threads);
                prop_assert_eq!(
                    &par,
                    &dec,
                    "parallel ({} workers) diverged from sequential ({:?})",
                    threads,
                    objective
                );
            }
        }
    }
}

/// The multi-interval exhaustive reference itself is pinned against the
/// matching-based feasibility oracle: whenever `brute_force` says
/// infeasible, the Hall-violator certificate must exist, and vice versa.
/// (Keeps the reference honest — the differential suite is only as good
/// as its oracle.)
#[test]
fn brute_force_feasibility_matches_matching_oracle() {
    use gap_scheduling::feasibility;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..120 {
        let n = rng.gen_range(1..=6);
        let jobs: Vec<Vec<i64>> = (0..n)
            .map(|_| {
                let k = rng.gen_range(1..=3);
                (0..k).map(|_| rng.gen_range(0..10)).collect()
            })
            .collect();
        let inst = MultiInstance::from_times(jobs).unwrap();
        let by_bf = brute_force::min_gaps_multi(&inst).is_some();
        let by_matching = feasibility::is_feasible(&inst);
        assert_eq!(by_bf, by_matching, "case {case}: {inst:?}");
    }
}

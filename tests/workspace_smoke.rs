//! Workspace smoke tests: the `gaps` CLI round-trips instances through the
//! text serialization format (`instance v1` / `multi v1`), including a real
//! `gaps generate | gaps solve` pipe, and every example in `examples/`
//! builds.

use std::io::Write;
use std::process::{Command, Stdio};

/// Path to the compiled `gaps` binary (provided by cargo for bins in the
/// package under test).
fn gaps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gaps"))
}

/// Unique-per-process temp path so concurrent test runs on one machine
/// (worktrees, shared CI runners) never read each other's instances.
fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gaps-smoke-{}-{name}", std::process::id()))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn gaps");
    assert!(
        out.status.success(),
        "command failed ({:?}):\nstdout: {}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn generate_solve_roundtrip_one_interval() {
    let text = run_ok(gaps().args([
        "generate",
        "--kind",
        "feasible",
        "--seed",
        "7",
        "--n",
        "8",
        "--horizon",
        "16",
        "--processors",
        "2",
    ]));
    assert!(
        text.starts_with("instance v1"),
        "one-interval serialization must use the `instance v1` header, got:\n{text}"
    );

    let path = temp_path("one.txt");
    std::fs::write(&path, &text).unwrap();
    let path = path.to_str().unwrap();

    let info = run_ok(gaps().args(["info", "--input", path]));
    assert!(
        info.contains("one-interval instance"),
        "info output:\n{info}"
    );
    assert!(info.contains("feasible: true"), "info output:\n{info}");

    for objective in ["gaps", "spans", "power"] {
        let solved = run_ok(gaps().args([
            "solve",
            "--input",
            path,
            "--objective",
            objective,
            "--alpha",
            "2",
        ]));
        assert!(
            solved.contains(&format!("optimal {objective}")),
            "solve --objective {objective} output:\n{solved}"
        );
    }
}

#[test]
fn generate_solve_roundtrip_multi_interval() {
    let text = run_ok(gaps().args([
        "generate",
        "--kind",
        "multi",
        "--seed",
        "3",
        "--n",
        "6",
        "--horizon",
        "12",
    ]));
    assert!(
        text.starts_with("multi v1"),
        "multi-interval serialization must use the `multi v1` header, got:\n{text}"
    );

    let path = temp_path("multi.txt");
    std::fs::write(&path, &text).unwrap();
    let path = path.to_str().unwrap();

    let solved = run_ok(gaps().args(["solve", "--input", path, "--objective", "gaps"]));
    assert!(solved.contains("optimal gaps"), "solve output:\n{solved}");

    let approx = run_ok(gaps().args(["approx", "--input", path, "--alpha", "1.5"]));
    assert!(
        approx.contains("approximate power"),
        "approx output:\n{approx}"
    );
}

/// The literal `gaps generate | gaps solve` pipe: solve reads the generated
/// instance from stdin via `--input -`.
#[test]
fn generate_pipes_into_solve() {
    let generated = run_ok(gaps().args([
        "generate",
        "--kind",
        "uniform",
        "--seed",
        "11",
        "--n",
        "6",
        "--horizon",
        "14",
    ]));

    let mut solve = gaps()
        .args(["solve", "--input", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gaps solve");
    solve
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(generated.as_bytes())
        .expect("write instance to pipe");
    let out = solve.wait_with_output().expect("gaps solve exits");
    assert!(
        out.status.success(),
        "piped solve failed:\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let solved = String::from_utf8_lossy(&out.stdout);
    assert!(
        solved.contains("optimal gaps") || solved.contains("infeasible"),
        "piped solve output:\n{solved}"
    );
}

/// A simulate round-trip on a generated instance exercises the sim crate
/// from the CLI surface.
#[test]
fn generate_then_simulate() {
    let text = run_ok(gaps().args([
        "generate",
        "--kind",
        "feasible",
        "--seed",
        "5",
        "--n",
        "6",
        "--horizon",
        "12",
    ]));
    let path = temp_path("sim.txt");
    std::fs::write(&path, &text).unwrap();

    for policy in ["clairvoyant", "timeout", "sleep", "never"] {
        let sim = run_ok(gaps().args([
            "simulate",
            "--input",
            path.to_str().unwrap(),
            "--alpha",
            "3",
            "--policy",
            policy,
        ]));
        assert!(sim.contains("total energy"), "simulate output:\n{sim}");
    }
}

/// All examples build. (Their runtime behavior is exercised by `cargo run
/// --example` in CI; here we guarantee they at least always compile.)
#[test]
fn all_examples_build() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .args(["build", "--examples", "--quiet"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("spawn cargo build --examples");
    assert!(status.success(), "cargo build --examples failed");
}

//! Integration tests: full pipelines across crates (workloads → solvers →
//! simulator; set cover → gadgets → solvers → back).

use gap_scheduling::brute_force;
use gap_scheduling::compress;
use gap_scheduling::multi_interval::approx_min_power;
use gap_scheduling::multiproc_dp::{min_gap_schedule, min_span_schedule};
use gap_scheduling::power_dp::min_power_schedule;
use gap_scheduling::reductions::{setcover_gap, setcover_power};
use gap_scheduling::setcover::exact_min_cover;
use gap_scheduling::sim::{simulate_schedule, Clairvoyant};
use gap_scheduling::workloads::{adversarial, multi_interval, one_interval, serialize, setcover};
use gap_scheduling::{edf, min_restart};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn workload_to_dp_to_simulator_energy_agrees() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = 1 + seed % 6;
        let inst = one_interval::feasible(&mut rng, 9, 16, 3, 2);
        let sol = min_power_schedule(&inst, alpha).expect("feasible by construction");
        let report = simulate_schedule(&inst, &sol.schedule, alpha, &Clairvoyant { alpha });
        assert_eq!(report.energy, sol.power, "seed {seed}");
        // And the optimum is no worse than EDF's energy.
        let baseline = edf::edf(&inst).expect("feasible");
        let edf_energy = simulate_schedule(&inst, &baseline, alpha, &Clairvoyant { alpha }).energy;
        assert!(sol.power <= edf_energy);
    }
}

#[test]
fn compression_then_dp_equals_uncompressed_brute_force() {
    // Far-apart clusters make the raw horizon too big for the DP; after
    // compression the DP must agree with (slot-based) exhaustive search
    // on the original.
    let inst = gap_scheduling::instance::Instance::from_windows(
        [(0, 2), (1, 3), (100_000, 100_001), (100_001, 100_002)],
        1,
    )
    .unwrap();
    let multi = {
        // slot-based exhaustive search works on the uncompressed original
        let jobs: Vec<Vec<i64>> = inst
            .jobs()
            .iter()
            .map(|j| (j.release..=j.deadline).collect())
            .collect();
        gap_scheduling::instance::MultiInstance::from_times(jobs).unwrap()
    };
    let (bf_gaps, _) = brute_force::min_gaps_multi(&multi).unwrap();

    let (compressed, _map) = compress::compress_instance_gap(&inst);
    let dp = gap_scheduling::baptiste::min_gaps_value(&compressed).unwrap();
    assert_eq!(dp, bf_gaps);

    // Power likewise, for a couple of alphas.
    for alpha in [1u64, 4] {
        let (bf_power, _) = brute_force::min_power_multi(&multi, alpha).unwrap();
        let (cp, _) = compress::compress_instance_power(&inst, alpha);
        let dp_power = gap_scheduling::baptiste::min_power_value(&cp, alpha).unwrap();
        assert_eq!(dp_power, bf_power, "alpha {alpha}");
    }
}

#[test]
fn compression_then_multiproc_dp_on_far_clusters() {
    // Two bursts separated by a huge dead stretch, p = 2: the raw horizon
    // exceeds the DP's limit; compression brings it down with identical
    // optima on both objectives (checked against slot-based search).
    let windows = vec![
        (0, 2),
        (0, 2),
        (1, 3),
        (1_000_000, 1_000_002),
        (1_000_001, 1_000_002),
    ];
    let inst = gap_scheduling::instance::Instance::from_windows(windows.clone(), 2).unwrap();
    let (compressed, _) = compress::compress_instance_gap(&inst);
    assert!(compressed.horizon().unwrap().len() < 20);
    let dp = min_span_schedule(&compressed).expect("feasible");
    let bf = brute_force::min_spans_multiproc(&compressed)
        .expect("feasible")
        .0;
    assert_eq!(dp.spans, bf);
    // Gap objective too, and the witness verifies on the compressed form.
    let gaps = min_gap_schedule(&compressed).expect("feasible");
    gaps.schedule.verify(&compressed).unwrap();
    assert_eq!(gaps.gaps, dp.spans.saturating_sub(2));
}

#[test]
fn setcover_gadget_end_to_end() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let cover = setcover::random_cover(&mut rng, 5, 4, 3);
        let k = exact_min_cover(&cover).expect("patched feasible").len() as u64;

        // Gap gadget (Theorem 6).
        let g = setcover_gap::build_theorem6(&cover);
        let (gaps, sched) = brute_force::min_gaps_multi(&g.multi).expect("feasible");
        assert_eq!(gaps, k, "seed {seed}");
        let mapped = g.schedule_to_cover(&cover, &sched);
        cover.verify_cover(&mapped).unwrap();

        // Power gadget (Theorem 4).
        let gp = setcover_power::build_theorem4(&cover);
        let (power, _) = brute_force::min_power_multi(&gp.multi, gp.alpha).expect("feasible");
        assert_eq!(gp.cover_size_of_power(power), k, "seed {seed}");
    }
}

#[test]
fn approx_power_pipeline_on_generated_workloads() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let inst = multi_interval::feasible_slots(&mut rng, 8, 14, 2);
        let alpha = (seed % 4) as f64;
        let res = approx_min_power(&inst, alpha, 32).expect("feasible");
        res.schedule.verify(&inst).unwrap();
        let (opt, _) = brute_force::min_power_multi(&inst, alpha as u64).expect("feasible");
        assert!(res.power + 1e-9 >= opt as f64);
        assert!(
            res.power <= (1.0 + (2.0 / 3.0 + 0.05) * alpha) * opt as f64 + 1e-9,
            "seed {seed}: {} vs opt {opt} at alpha {alpha}",
            res.power
        );
    }
}

#[test]
fn consultant_story_scales_with_budget() {
    let mut rng = StdRng::seed_from_u64(77);
    let inst = adversarial::consultant(&mut rng, 4, 6, 10, 2, 2);
    let mut prev = 0;
    for k in 0..=4u64 {
        let res = min_restart::greedy_min_restart(&inst, k);
        res.verify(&inst).unwrap();
        assert!(
            res.scheduled >= prev,
            "throughput is monotone in the budget"
        );
        prev = res.scheduled;
    }
}

#[test]
fn serialization_roundtrips_preserve_optima() {
    let mut rng = StdRng::seed_from_u64(88);
    let inst = one_interval::feasible(&mut rng, 7, 12, 2, 2);
    let text = serialize::instance_to_text(&inst);
    let back = serialize::instance_from_text(&text).unwrap();
    assert_eq!(
        min_span_schedule(&inst).unwrap().spans,
        min_span_schedule(&back).unwrap().spans
    );

    let multi = multi_interval::feasible_slots(&mut rng, 6, 10, 2);
    let mtext = serialize::multi_to_text(&multi);
    let mback = serialize::multi_from_text(&mtext).unwrap();
    assert_eq!(
        brute_force::min_gaps_multi(&multi).unwrap().0,
        brute_force::min_gaps_multi(&mback).unwrap().0
    );
}

#[test]
fn online_family_through_the_whole_stack() {
    let n = 6u64;
    let inst = adversarial::online_lower_bound(n as usize);
    // Online (EDF) pays n − 1 unit gaps, the DP none; the simulator turns
    // that into exactly n − 1 extra energy units (each unit gap is bridged
    // at cost min(1, α) = 1 by the clairvoyant policy).
    let alpha = 10u64;
    let online = edf::edf(&inst).unwrap();
    let offline = min_gap_schedule(&inst).unwrap().schedule;
    let e_online = simulate_schedule(&inst, &online, alpha, &Clairvoyant { alpha }).energy;
    let e_offline = simulate_schedule(&inst, &offline, alpha, &Clairvoyant { alpha }).energy;
    assert_eq!(
        e_online,
        e_offline + (n - 1),
        "the online penalty shows up as real energy"
    );
}

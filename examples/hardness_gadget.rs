//! Walk through the Theorem 6 reduction end to end: a set-cover instance
//! becomes a multi-interval gap-scheduling instance whose optimal gap
//! count *is* the optimal cover size — the mechanism by which the paper
//! transfers set cover's Ω(lg n) inapproximability to gap scheduling.
//!
//! Two acts:
//! 1. the classic family where greedy set cover pays a Θ(lg n) premium —
//!    the hardness that the reduction transports;
//! 2. the gadget itself on a small instance, solved exactly on **both**
//!    sides (the scheduling side is NP-hard, so exact solving is
//!    exponential — which is exactly the point).
//!
//! ```sh
//! cargo run --release --example hardness_gadget
//! ```

use gap_scheduling::brute_force::min_gaps_multi;
use gap_scheduling::reductions::setcover_gap;
use gap_scheduling::setcover::{exact_min_cover, greedy_cover, SetCoverInstance};
use gap_scheduling::workloads::setcover::greedy_trap;

fn main() {
    // Act 1: the logarithmic premium on the set-cover side.
    println!("act 1: greedy set cover pays Θ(lg n) on the rows-vs-columns family");
    println!("\n   k | universe | OPT | greedy | ratio");
    for k in 2..=6u32 {
        let trap = greedy_trap(k);
        let opt = exact_min_cover(&trap).expect("feasible").len();
        let greedy = greedy_cover(&trap).expect("feasible").len();
        println!(
            "   {k} | {:>8} | {opt:>3} | {greedy:>6} | {:.2}",
            trap.universe_size(),
            greedy as f64 / opt as f64
        );
    }
    println!("   (the ratio grows like lg n — no algorithm can do o(lg n) unless P = NP)");

    // Act 2: the Theorem 6 gadget on a small instance, exact on both sides.
    let cover = SetCoverInstance::new(
        6,
        vec![
            vec![0, 1, 2],
            vec![3, 4, 5],
            vec![0, 2, 4],
            vec![1, 3, 5],
            vec![5],
        ],
    )
    .expect("valid sets");
    println!(
        "\nact 2: the gadget, universe 6, {} sets",
        cover.set_count()
    );

    let opt_cover = exact_min_cover(&cover).expect("feasible");
    println!(
        "  exact minimum cover: {} sets {:?}",
        opt_cover.len(),
        opt_cover
    );

    let gadget = setcover_gap::build_theorem6(&cover);
    println!(
        "  gadget: {} jobs (one per element + dummy), {} far-apart set intervals",
        gadget.multi.job_count(),
        cover.set_count()
    );

    let (gaps, sched) = min_gaps_multi(&gadget.multi).expect("gadget feasible");
    println!("  optimal schedule has {gaps} gaps");
    assert_eq!(
        gaps,
        opt_cover.len() as u64,
        "Theorem 6: gaps = optimal cover size"
    );

    let mapped = gadget.schedule_to_cover(&cover, &sched);
    cover.verify_cover(&mapped).expect("mapped solution covers");
    println!(
        "  schedule maps back to cover {mapped:?} (size {})",
        mapped.len()
    );

    let greedy = greedy_cover(&cover).expect("feasible");
    let lifted = gadget.cover_to_schedule(&cover, &greedy);
    println!(
        "  greedy cover ({} sets) lifts to a schedule with {} gaps (>= {gaps})",
        greedy.len(),
        lifted.gap_count()
    );
    assert!(lifted.gap_count() >= gaps);

    println!(
        "\nbecause the maps preserve solution sizes exactly, any o(lg n)-approximation \
         for multi-interval gap scheduling would solve set cover too well — impossible \
         unless P = NP (Theorem 6)."
    );
}

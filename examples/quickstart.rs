//! 60-second tour: build an instance, solve it exactly three ways, and
//! execute the result on the simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gap_scheduling::instance::Instance;
use gap_scheduling::sim::{simulate_schedule, Clairvoyant};
use gap_scheduling::{baptiste, edf, multiproc_dp, power_dp};

fn main() {
    // Eight unit jobs with release times and deadlines, two processors.
    let inst = Instance::from_windows(
        [
            (0, 3),
            (0, 3),
            (2, 5),
            (2, 5),
            (9, 12),
            (10, 11),
            (11, 11),
            (0, 12),
        ],
        2,
    )
    .expect("valid windows");
    let alpha = 3u64;
    println!(
        "instance: {} jobs, {} processors, horizon {:?}",
        inst.job_count(),
        inst.processors(),
        inst.horizon().unwrap()
    );

    // 1. The paper's Theorem 1: minimize gaps (and wake-up transitions).
    let spans = multiproc_dp::min_span_schedule(&inst).expect("feasible");
    let gaps = multiproc_dp::min_gap_schedule(&inst).expect("feasible");
    println!("\nTheorem 1 (exact DP):");
    println!("  minimum wake-ups (spans): {}", spans.spans);
    println!("  minimum finite gaps:      {}", gaps.gaps);
    for a in gaps.schedule.assignments().iter().take(8) {
        print!("  [t={} P{}]", a.time, a.processor);
    }
    println!();

    // 2. Theorem 2: minimize power with transition cost alpha.
    let power = power_dp::min_power_schedule(&inst, alpha).expect("feasible");
    println!("\nTheorem 2 (power DP, alpha = {alpha}):");
    println!("  minimum power: {}", power.power);

    // 3. The EDF baseline is feasible but gap-oblivious.
    let edf_sched = edf::edf(&inst).expect("feasible");
    println!("\nEDF baseline:");
    println!("  gaps: {} (optimal {})", edf_sched.gap_count(2), gaps.gaps);

    // 4. Execute the power-optimal schedule on the simulator and check the
    //    measured energy equals the analytic optimum.
    let report = simulate_schedule(&inst, &power.schedule, alpha, &Clairvoyant { alpha });
    println!("\nsimulator:");
    println!(
        "  measured energy: {} (DP said {})",
        report.energy, power.power
    );
    assert_eq!(report.energy, power.power);

    // 5. Single-processor view: Baptiste's DP on the same jobs, p = 1.
    let single = inst.with_processors(1).expect("valid");
    match baptiste::min_gaps_value(&single) {
        Some(g) => println!("\nBaptiste p=1: minimum gaps = {g}"),
        None => println!("\nBaptiste p=1: infeasible on a single processor"),
    }
}

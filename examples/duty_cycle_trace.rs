//! A day in the life of a sleepy processor: diurnal Bernoulli arrivals,
//! the exact power DP, an ASCII timeline of the result, and a bake-off of
//! online power-down policies (deterministic timeout vs the randomized
//! e/(e−1) strategy) on the resulting idle periods.
//!
//! ```sh
//! cargo run --release --example duty_cycle_trace
//! ```

use gap_scheduling::power::optimal_active_profile;
use gap_scheduling::render::render_timeline_with_active;
use gap_scheduling::sim::policy::gap_cost;
use gap_scheduling::sim::{
    simulate_schedule, Clairvoyant, RandomizedTimeout, SleepImmediately, Timeout,
};
use gap_scheduling::workloads::arrivals;
use gap_scheduling::{edf, power_dp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);
    let alpha = 4u64;
    // Two day/night cycles: busy days, sparse nights.
    let inst = arrivals::diurnal(&mut rng, 2, 14, 14, 0.55, 0.08, 3, 1);
    println!(
        "diurnal workload: {} jobs over two 28-slot day/night cycles, alpha = {alpha}",
        inst.job_count()
    );

    let Some(sol) = power_dp::min_power_schedule(&inst, alpha) else {
        println!("(unlucky seed: instance infeasible — rerun with another seed)");
        return;
    };
    let active = optimal_active_profile(&sol.schedule, 1, alpha);
    println!("\npower-optimal schedule (# job, ~ idle-active bridge, . asleep):");
    print!(
        "{}",
        render_timeline_with_active(&inst, &sol.schedule, &active, 100)
    );
    println!("optimal power: {}", sol.power);

    let edf_sched = edf::edf(&inst).expect("feasible");
    println!(
        "for contrast, EDF burns {} (same jobs, gap-oblivious placement)",
        gap_scheduling::power::power_cost_multiproc(&edf_sched, 1, alpha)
    );

    // Policy bake-off on the optimal schedule's gaps.
    println!("\npolicy bake-off on the power-optimal schedule:");
    let clair = simulate_schedule(&inst, &sol.schedule, alpha, &Clairvoyant { alpha }).energy;
    let timeout =
        simulate_schedule(&inst, &sol.schedule, alpha, &Timeout { threshold: alpha }).energy;
    let eager = simulate_schedule(&inst, &sol.schedule, alpha, &SleepImmediately).energy;
    println!("  clairvoyant (offline optimum)   {clair}");
    println!("  timeout(alpha) [2-competitive]  {timeout}");
    println!("  sleep-immediately               {eager}");

    // The randomized strategy, in expectation, per gap length.
    let dist = RandomizedTimeout::new(alpha);
    println!("\nexpected per-gap cost (alpha = {alpha}):");
    println!("  gap | offline | timeout(a) | randomized E[cost]");
    for g in [1u64, 2, 4, 6, 10] {
        println!(
            "  {g:>3} | {:>7} | {:>10} | {:>8.2}",
            g.min(alpha),
            gap_cost(&Timeout { threshold: alpha }, g, alpha),
            dist.expected_gap_cost(g),
        );
    }
    println!(
        "\nworst-case expected ratio of the randomized strategy: {:.3} (theory: e/(e−1) ≈ 1.582)",
        dist.worst_expected_ratio(40)
    );
}

//! A multiprocessor batch window: nightly jobs with deadlines on a small
//! cluster whose machines sleep between bursts. Compares the exact DP
//! against EDF and measures the energy both schedules actually burn.
//!
//! ```sh
//! cargo run --release --example datacenter_batch
//! ```

use gap_scheduling::power::power_cost_multiproc;
use gap_scheduling::sim::{simulate_schedule, Clairvoyant, SleepImmediately, Timeout};
use gap_scheduling::workloads::one_interval;
use gap_scheduling::{edf, multiproc_dp, power_dp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let p = 3u32;
    let alpha = 5u64;
    // Three bursts of arrivals (e.g. ETL waves), slack 4, on 3 machines.
    let inst = one_interval::bursty(&mut rng, 3, 7, 10, 6, 5, p);
    println!(
        "batch window: {} jobs, {} machines, horizon {:?}, wake cost alpha = {alpha}",
        inst.job_count(),
        p,
        inst.horizon().unwrap()
    );

    let edf_sched = edf::edf(&inst).expect("bursty workload is feasible");
    let gap_opt = multiproc_dp::min_gap_schedule(&inst).expect("feasible");
    let power_opt = power_dp::min_power_schedule(&inst, alpha).expect("feasible");

    println!("\n              wake-ups   finite-gaps   power(alpha={alpha})");
    for (name, sched) in [
        ("EDF", &edf_sched),
        ("gap-optimal DP", &gap_opt.schedule),
        ("power-optimal DP", &power_opt.schedule),
    ] {
        println!(
            "  {name:<18} {:>5}      {:>5}        {:>6}",
            sched.span_count(p),
            sched.gap_count(p),
            power_cost_multiproc(sched, p, alpha),
        );
    }
    assert!(
        power_cost_multiproc(&power_opt.schedule, p, alpha)
            <= power_cost_multiproc(&edf_sched, p, alpha)
    );

    // How much does the sleep policy itself matter? Execute the
    // power-optimal schedule under three policies.
    println!("\nsimulated energy of the power-optimal schedule:");
    for (name, energy) in [
        (
            "clairvoyant (min(gap, alpha))",
            simulate_schedule(&inst, &power_opt.schedule, alpha, &Clairvoyant { alpha }).energy,
        ),
        (
            "timeout(alpha) online",
            simulate_schedule(
                &inst,
                &power_opt.schedule,
                alpha,
                &Timeout { threshold: alpha },
            )
            .energy,
        ),
        (
            "sleep immediately",
            simulate_schedule(&inst, &power_opt.schedule, alpha, &SleepImmediately).energy,
        ),
    ] {
        println!("  {name:<30} {energy}");
    }
    println!(
        "\n(clairvoyant energy equals the DP optimum {})",
        power_opt.power
    );
}

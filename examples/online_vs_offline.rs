//! Section 1's adversarial family: online algorithms that must keep every
//! feasible instance feasible cannot idle, so they pay Θ(n) gaps where the
//! offline optimum pays none. This example prints the growth.
//!
//! ```sh
//! cargo run --release --example online_vs_offline
//! ```

use gap_scheduling::edf;
use gap_scheduling::online::online_vs_offline_gaps;
use gap_scheduling::workloads::adversarial::{online_lower_bound, online_lower_bound_punisher};

fn main() {
    println!("the Section 1 family: n flexible jobs (deadline 3n) + n tight jobs at n, n+2, ...");
    println!("\n   n | online gaps (EDF) | offline gaps (exact DP)");
    for n in [2usize, 4, 8, 16, 32, 64] {
        let inst = online_lower_bound(n);
        let (online, offline) = online_vs_offline_gaps(&inst).expect("family is feasible");
        println!("  {n:>3} | {online:>12} | {offline:>10}");
        assert_eq!(online, n as u64 - 1);
        assert_eq!(offline, 0);
    }

    println!(
        "\nwhy can't the online algorithm just wait? The adversary's other branch \
         releases 2n back-to-back tight jobs instead:"
    );
    let punisher = online_lower_bound_punisher(6);
    println!(
        "  punisher branch feasible for the non-idler: {}",
        edf::is_feasible(&punisher)
    );
    println!("  ... but an algorithm that idled during [0, n) has already lost slots it needs.");
    println!(
        "\nConclusion (paper, Section 1): every correct online algorithm has \
         competitive ratio >= n for gap scheduling; that is why the paper is offline."
    );
}

//! The paper's Section 6 story: a consultant bills by the day. Each task
//! can be done at specified times on specified days; every contiguous
//! working stretch is one billable day (a "restart"). Given a budget of
//! `k` days, how much work can the consultant finish?
//!
//! This is the minimum-restart problem; the greedy of Theorem 11 picks the
//! largest fully-packable stretch each day.
//!
//! ```sh
//! cargo run --release --example consultant
//! ```

use gap_scheduling::min_restart::{greedy_min_restart, sqrt_bound};
use gap_scheduling::workloads::adversarial::consultant;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let days = 6;
    let day_len = 8; // 8 working hours
    let tasks = 18;
    let inst = consultant(&mut rng, days, day_len, tasks, 2, 3);
    println!(
        "consultant calendar: {days} days x {day_len}h, {tasks} tasks, \
         each doable in 2 windows of 3 slots"
    );

    println!("\nbudget k | tasks done | working stretches chosen");
    let mut prev = 0usize;
    for k in 0..=5u64 {
        let res = greedy_min_restart(&inst, k);
        res.verify(&inst).expect("greedy output is consistent");
        let stretches: Vec<String> = res
            .intervals
            .iter()
            .map(|iv| format!("[{}..{}]", iv.start, iv.end))
            .collect();
        println!(
            "   {k:>3}   |    {:>3}     | {}",
            res.scheduled,
            stretches.join(" ")
        );
        assert!(res.scheduled >= prev, "more budget never hurts");
        prev = res.scheduled;
    }

    println!(
        "\nTheorem 11 guarantee: the greedy is within a factor O(sqrt n) = {:.1} \
         of the best possible for every budget.",
        sqrt_bound(tasks)
    );
}

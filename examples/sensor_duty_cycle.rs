//! A sensor node executes measurement tasks, each feasible only in
//! specific transmission windows (multi-interval jobs). The radio sleeps
//! between tasks; waking costs α. This is multi-interval power
//! minimization — NP-hard to approximate better than Ω(lg n) in general
//! (Theorem 4) — so we run the paper's Theorem 3 approximation and, on
//! this small instance, compare with the exhaustive optimum across α.
//!
//! ```sh
//! cargo run --release --example sensor_duty_cycle
//! ```

use gap_scheduling::brute_force::min_power_multi;
use gap_scheduling::multi_interval::{approx_min_power, theorem3_bound};
use gap_scheduling::workloads::multi_interval::feasible_slots;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let inst = feasible_slots(&mut rng, 8, 16, 2);
    println!(
        "sensor tasks: {} jobs over 17 slots (each 3 allowed slots)",
        inst.job_count()
    );
    for (i, job) in inst.jobs().iter().enumerate() {
        println!("  task {i}: allowed at {:?}", job.times());
    }

    println!("\nalpha | approx power | exact power | ratio | theorem 3 bound");
    for alpha in [0u64, 1, 2, 4, 8] {
        let approx = approx_min_power(&inst, alpha as f64, 64).expect("feasible");
        let (exact, _) = min_power_multi(&inst, alpha).expect("feasible");
        let ratio = approx.power / exact as f64;
        println!(
            "  {alpha:>3} | {:>10.1}  | {exact:>9}   | {ratio:>5.3} | {:>7.3}",
            approx.power,
            theorem3_bound(alpha as f64, 0.05),
        );
        assert!(ratio <= theorem3_bound(alpha as f64, 0.05) + 1e-9);
    }

    let alpha = 4.0;
    let res = approx_min_power(&inst, alpha, 64).expect("feasible");
    println!(
        "\nat alpha = {alpha}: the packing scheduled {} two-task bursts (parity {});",
        res.packed_blocks, res.parity
    );
    println!(
        "final duty cycle occupies slots {:?}",
        res.schedule.occupied()
    );
}

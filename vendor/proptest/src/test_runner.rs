//! Test configuration and the deterministic generator behind the
//! [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration; only `cases` is meaningful in the stub.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Random source handed to [`Strategy::generate`](crate::Strategy::generate).
///
/// Seeded deterministically per test (name-hashed), overridable with the
/// `PROPTEST_SEED` environment variable for reproduction.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
    seed: u64,
}

impl TestRng {
    /// Build the generator for the named test, honoring `PROPTEST_SEED`.
    ///
    /// An explicit `PROPTEST_SEED` is used verbatim (it is what a failure
    /// message printed, so replaying it must reproduce that exact stream);
    /// otherwise each test gets a name-hashed seed so tests draw distinct
    /// data.
    pub fn from_env(test_name: &str) -> Self {
        match std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            Some(seed) => TestRng::from_seed(seed),
            None => TestRng::from_seed(0x9055_A210_C0FF_EE01 ^ fnv1a(test_name.as_bytes())),
        }
    }

    /// Build from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator started from (reported on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_seeds_differ_but_reproduce() {
        if std::env::var_os("PROPTEST_SEED").is_some() {
            // An explicit seed deliberately overrides per-test derivation.
            return;
        }
        let mut a = TestRng::from_env("alpha");
        let mut b = TestRng::from_env("alpha");
        let mut c = TestRng::from_env("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.seed(), c.seed());
        let _ = c.next_u64();
    }

    #[test]
    fn explicit_seed_reproduces_verbatim() {
        // The failure message prints `rng.seed()` and tells the user to set
        // PROPTEST_SEED to it; replaying that value must recreate the exact
        // stream, independent of the test's name.
        let mut a = TestRng::from_seed(12345);
        let mut b = TestRng::from_seed(12345);
        assert_eq!(a.seed(), 12345);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

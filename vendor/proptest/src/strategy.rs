//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is a recipe for generating random values of one type. The
//! stub keeps proptest's composition surface (`prop_map`, `prop_flat_map`,
//! `prop_filter`, `prop_filter_map`, tuples, ranges, [`Just`]) but
//! generates values directly instead of building shrinkable value trees.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// How many draws a filtering strategy attempts before giving up.
const MAX_FILTER_TRIES: usize = 10_000;

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `predicate`, retrying otherwise.
    fn prop_filter<F>(self, reason: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            predicate,
        }
    }

    /// Map values through a partial function, retrying on `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let value = self.inner.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter: no value accepted after {MAX_FILTER_TRIES} tries ({})",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_TRIES {
            if let Some(value) = (self.f)(self.inner.generate(rng)) {
                return value;
            }
        }
        panic!(
            "prop_filter_map: no value accepted after {MAX_FILTER_TRIES} tries ({})",
            self.reason
        );
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_combinators_generate() {
        let mut rng = TestRng::from_seed(99);
        let s = (1u32..=5, 0i64..10).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..15).contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_the_intermediate_value() {
        let mut rng = TestRng::from_seed(3);
        let s = (2u32..6).prop_flat_map(|n| (0u32..n).prop_map(move |x| (n, x)));
        for _ in 0..200 {
            let (n, x) = s.generate(&mut rng);
            assert!(x < n);
        }
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn filter_exhaustion_panics_with_reason() {
        let mut rng = TestRng::from_seed(4);
        (0u32..10)
            .prop_filter("impossible", |_| false)
            .generate(&mut rng);
    }
}

//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this crate implements
//! the subset of proptest 1.x that the workspace's property tests use,
//! source-compatibly:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`, `prop_filter`,
//!   and `prop_filter_map` combinators,
//! * strategies for integer ranges, tuples of strategies, [`Just`], and
//!   [`collection::vec`],
//! * the [`proptest!`] macro (including `#![proptest_config(...)]` and
//!   multiple `pattern in strategy` arguments per test),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Semantics: each test runs `cases` iterations against values drawn from a
//! deterministic generator (seeded per test from the `PROPTEST_SEED` env var
//! when set, else a fixed default), so failures are reproducible. Unlike
//! real proptest there is **no shrinking** — a failing case panics with the
//! case number and seed instead of a minimized input.

// The `proptest!` doc example shows the `#[test]` attribute because that is
// how the macro is used in practice; the example is compile-checked, which
// is all we need from it.
#![allow(clippy::test_attr_in_doctest)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Assert inside a property test; forwards to [`assert!`].
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property test; forwards to [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a property test; forwards to [`assert_ne!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case when an assumption does not hold.
///
/// The stub simply moves on to the next iteration's values by returning
/// early from the case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Define property tests: zero or more `#[test]` functions whose arguments
/// are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::from_env(stringify!($name));
                for __case in 0..config.cases {
                    // One closure per case so `prop_assume!` can skip via
                    // early return without ending the whole test.
                    let mut __one_case = |__rng: &mut $crate::test_runner::TestRng| {
                        let ($($arg,)+) = (
                            $($crate::strategy::Strategy::generate(&($strategy), __rng),)+
                        );
                        $body
                    };
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __one_case(&mut __rng)),
                    );
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest stub: {} failed at case {}/{} (seed {}); \
                             set PROPTEST_SEED={} to reproduce",
                            stringify!($name),
                            __case + 1,
                            config.cases,
                            __rng.seed(),
                            __rng.seed(),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_sorted(len: usize) -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(0u32..100, 1..=len).prop_map(|mut v| {
            v.sort_unstable();
            v
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn tuple_patterns_work((a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..5, 2..=6)) {
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_and_map_compose(v in arb_sorted(8)) {
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn filter_map_retries(x in (0u32..100).prop_filter_map("even only", |x| {
            if x % 2 == 0 { Some(x) } else { None }
        })) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0u32..4) {
            prop_assert!(x < 4);
        }
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = crate::test_runner::TestRng::from_env("just");
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}

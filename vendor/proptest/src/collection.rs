//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: a `usize` range or a fixed size.
pub trait SizeRange {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "vec: empty size range {self:?}");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "vec: empty size range {self:?}");
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_respect_bounds() {
        let mut rng = TestRng::from_seed(21);
        let s = vec(0u32..7, 2..=5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 7));
        }
    }

    #[test]
    fn half_open_and_fixed_sizes() {
        let mut rng = TestRng::from_seed(22);
        let half_open = vec(0u32..3, 1..4);
        let fixed = vec(0u32..3, 3usize);
        for _ in 0..100 {
            assert!((1..=3).contains(&half_open.generate(&mut rng).len()));
            assert_eq!(fixed.generate(&mut rng).len(), 3);
        }
    }

    #[test]
    fn nested_vec_strategies_compose() {
        let mut rng = TestRng::from_seed(23);
        let s = vec(vec(0u32..4, 1..=3), 0..=4);
        let v = s.generate(&mut rng);
        assert!(v.len() <= 4);
        for inner in v {
            assert!((1..=3).contains(&inner.len()));
        }
    }
}

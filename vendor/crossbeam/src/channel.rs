//! Multi-producer multi-consumer channels, source-compatible with the
//! subset of `crossbeam-channel` the workspace uses.
//!
//! Covered API (see the crate root for the stub policy):
//!
//! * [`bounded`] / [`unbounded`] constructors returning
//!   ([`Sender`], [`Receiver`]) pairs;
//! * `Sender`: [`Sender::send`], [`Sender::try_send`], `Clone`;
//! * `Receiver`: [`Receiver::recv`], [`Receiver::recv_timeout`],
//!   [`Receiver::try_recv`], [`Receiver::iter`], [`Receiver::try_iter`],
//!   `Clone`, and `IntoIterator` for both `Receiver` and `&Receiver`;
//! * error types [`SendError`], [`RecvError`], [`RecvTimeoutError`],
//!   [`TryRecvError`], [`TrySendError`] with the real crate's disconnect
//!   semantics: `send` fails once every receiver is gone, `recv` fails
//!   once every sender is gone *and* the queue has drained, `try_send`
//!   distinguishes a full queue ([`TrySendError::Full`]) from a dead one
//!   ([`TrySendError::Disconnected`]), `recv_timeout` distinguishes a
//!   deadline miss ([`RecvTimeoutError::Timeout`]) from disconnection.
//!
//! Known deviation: `bounded(0)` (crossbeam's rendezvous channel) is not
//! supported and panics; the workspace only uses positive capacities.
//!
//! The implementation is a `Mutex<VecDeque>` with two condvars (one for
//! "not empty", one for "not full") — the classic bounded-buffer monitor.
//! It favors obviousness over throughput; the real crate's lock-free
//! segments can be swapped in without touching any call site.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Under `--features sanitize`, panic if the calling thread performs a
/// blocking channel operation while holding any instrumented
/// `parking_lot` guard — that shape deadlocks the bounded-buffer pool
/// (the lock holder blocks; the thread that would unblock it wants the
/// lock). Named sites: the newest held guard and the channel op.
#[cfg(feature = "sanitize")]
#[track_caller]
fn sanitize_check_unlocked(op: &str) {
    if std::thread::panicking() {
        return;
    }
    let held = parking_lot::sanitize::held_lock_count();
    if held > 0 {
        let site = parking_lot::sanitize::newest_held_site()
            .unwrap_or_else(|| "<unknown site>".to_string());
        panic!(
            "sanitize: blocking channel `{op}` at {} while the thread holds {held} \
             lock guard(s) (newest: {site}); a channel op under a lock can deadlock",
            std::panic::Location::caller()
        );
    }
}

#[cfg(not(feature = "sanitize"))]
fn sanitize_check_unlocked(_op: &str) {}

/// The sending half was disconnected, returning the unsent message.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// All senders disconnected and the queue is empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Outcome of a failed non-blocking send attempt, returning the unsent
/// message.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity right now, but receivers remain.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the message that failed to send.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// True iff the failure was a full queue (backpressure, not death).
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Outcome of a receive attempt with a deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with nothing queued; senders remain.
    Timeout,
    /// Nothing queued and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive operation"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Outcome of a non-blocking receive attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now, but senders remain.
    Empty,
    /// Nothing queued and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// `None` for unbounded channels.
    capacity: Option<usize>,
}

impl<T> Shared<T> {
    /// Lock the state, recovering from poison (a panicking thread must not
    /// wedge its siblings; parity with `parking_lot` semantics elsewhere).
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn wait<'a>(&self, cv: &Condvar, guard: MutexGuard<'a, State<T>>) -> MutexGuard<'a, State<T>> {
        match cv.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The sending side of a channel; clone freely for more producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving side of a channel; clone freely for more consumers.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A channel holding at most `cap` in-flight messages; `send` blocks while
/// full. Panics on `cap == 0` (rendezvous channels are not stubbed).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are not stubbed");
    make(Some(cap))
}

/// A channel with no capacity bound; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Block until the message is queued (or every receiver is gone, in
    /// which case the message comes back in the error).
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        sanitize_check_unlocked("send");
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.shared.wait(&self.shared.not_full, st);
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking send: queue the message if there is room right now,
    /// otherwise hand it back immediately. Never blocks, so it is safe to
    /// call from latency-sensitive admission paths — this is the
    /// backpressure probe the serve daemon's bounded queue is built on.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.shared.lock();
            st.senders -= 1;
            st.senders
        };
        if remaining == 0 {
            // Receivers blocked on an empty queue must wake to observe the
            // disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives (or every sender is gone and the
    /// queue has drained).
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn recv(&self) -> Result<T, RecvError> {
        sanitize_check_unlocked("recv");
        let mut st = self.shared.lock();
        loop {
            if let Some(value) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.wait(&self.shared.not_empty, st);
        }
    }

    /// Block until a message arrives, every sender disconnects, or
    /// `timeout` elapses — whichever comes first. The real crate's
    /// deadline semantics: a message already queued is returned even at
    /// a zero timeout, and disconnection wins over the deadline.
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        sanitize_check_unlocked("recv_timeout");
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(value) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(RecvTimeoutError::Timeout);
            };
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            st = match self.shared.not_empty.wait_timeout(st, remaining) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        match st.queue.pop_front() {
            Some(value) => {
                drop(st);
                self.shared.not_full.notify_one();
                Ok(value)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking iterator: yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Non-blocking iterator: yields whatever is queued right now.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            st.receivers
        };
        if remaining == 0 {
            // Senders blocked on a full queue must wake to observe the
            // disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking borrowed iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking borrowed iterator over currently queued messages.
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Blocking owned iterator over received messages.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_within_a_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_fan_out_covers_every_message() {
        let (tx, rx) = bounded(4);
        let seen = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let seen = &seen;
                s.spawn(move |_| {
                    for v in rx {
                        seen.fetch_add(v, Ordering::SeqCst);
                    }
                });
            }
            drop(rx);
            for _ in 0..100 {
                tx.send(1usize).unwrap();
            }
            drop(tx);
        })
        .expect("threads join");
        assert_eq!(seen.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn bounded_send_blocks_until_a_receive_frees_a_slot() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        crate::scope(|s| {
            let handle = s.spawn(|_| tx.send(2)); // blocks: queue is full
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            handle.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        })
        .expect("threads join");
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn recv_drains_queue_before_reporting_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_iter_yields_only_whats_queued() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_iter().next(), None); // and does not block
        drop(tx);
    }

    #[test]
    fn blocked_senders_wake_when_all_receivers_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0u8).unwrap();
        crate::scope(|s| {
            let blocked = s.spawn(|_| tx.send(1)); // full queue: blocks
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert_eq!(blocked.join().unwrap(), Err(SendError(1)));
        })
        .expect("threads join");
    }

    #[test]
    #[should_panic(expected = "rendezvous")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u8>(0);
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        let err = tx.try_send(2).unwrap_err();
        assert!(err.is_full(), "{err:?}");
        assert_eq!(err.into_inner(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(())); // slot freed by the recv
        drop(rx);
        let err = tx.try_send(4).unwrap_err();
        assert!(!err.is_full(), "{err:?}");
        assert_eq!(err.into_inner(), 4);
    }

    #[test]
    fn recv_timeout_returns_queued_disconnected_or_times_out() {
        let (tx, rx) = unbounded();
        tx.send(11).unwrap();
        // Queued message wins even at a zero deadline.
        assert_eq!(rx.recv_timeout(Duration::ZERO), Ok(11));
        // Empty queue with live senders: the deadline fires.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        // A message arriving mid-wait is delivered before the deadline.
        crate::scope(|s| {
            s.spawn(|_| {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(12).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(60)), Ok(12));
        })
        .expect("threads join");
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(60)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_on_unbounded_only_fails_disconnected() {
        let (tx, rx) = unbounded();
        for i in 0..1000 {
            assert_eq!(tx.try_send(i), Ok(()));
        }
        drop(rx);
        assert!(tx.try_send(0).is_err());
    }

    #[cfg(feature = "sanitize")]
    mod sanitize {
        use super::super::{bounded, unbounded};
        use std::panic::{catch_unwind, AssertUnwindSafe};

        fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
            err.downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_default()
        }

        #[test]
        fn send_under_a_lock_panics() {
            let (tx, _rx) = bounded::<u8>(1);
            let m = parking_lot::Mutex::new(());
            let _g = m.lock();
            // analyzer: allow(concurrency): deliberately provoking the sanitizer
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _ = tx.send(1);
            }))
            .expect_err("sanitizer must refuse send under a guard");
            let msg = panic_message(err);
            assert!(msg.contains("channel `send`"), "{msg}");
            assert!(msg.contains("Mutex::lock"), "{msg}");
        }

        #[test]
        fn recv_under_a_lock_panics() {
            let (_tx, rx) = unbounded::<u8>();
            let m = parking_lot::Mutex::new(());
            let _g = m.lock();
            // analyzer: allow(concurrency): deliberately provoking the sanitizer
            let err = catch_unwind(AssertUnwindSafe(|| {
                let _ = rx.recv();
            }))
            .expect_err("sanitizer must refuse recv under a guard");
            assert!(panic_message(err).contains("channel `recv`"));
        }

        #[test]
        fn try_recv_stays_legal_under_a_lock() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            let m = parking_lot::Mutex::new(());
            let _g = m.lock();
            assert_eq!(rx.try_recv(), Ok(9)); // non-blocking: never deadlocks
        }
    }
}

//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! The build environment has no crate registry, so this shim provides the
//! API subset the workspace uses, source-compatibly:
//!
//! * [`scope`] with spawn-closures that receive the scope handle,
//!   implemented on top of `std::thread::scope` (stable since Rust 1.63,
//!   which postdates crossbeam's scoped threads);
//! * [`channel`] — MPMC [`channel::bounded`] / [`channel::unbounded`]
//!   channels with `send` / `recv` / `try_recv`, cloneable `Sender` /
//!   `Receiver` handles, blocking and non-blocking iterators, and the real
//!   crate's disconnect semantics (see the module header for the exact
//!   subset and the one documented deviation: no `bounded(0)` rendezvous).

use std::any::Any;

pub mod channel;

/// Handle passed to [`scope`]'s closure and to every spawned closure,
/// allowing nested spawns exactly like `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope handle (so it
    /// can spawn further threads), matching crossbeam's signature shape.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope handle; all threads spawned through the handle are
/// joined before `scope` returns.
///
/// `std::thread::scope` re-raises panics from unjoined scoped threads after
/// joining them, so a child panic propagates out of this call rather than
/// surfacing as `Err` — the workspace only ever calls
/// `.expect("threads join")` on the result, for which this is equivalent.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let results = std::sync::Mutex::new(Vec::new());
        super::scope(|scope| {
            for i in 0..8u32 {
                let results = &results;
                scope.spawn(move |_| results.lock().unwrap().push(i * i));
            }
        })
        .expect("threads join");
        let mut v = results.into_inner().unwrap();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::scope(|scope| {
            let flag = &flag;
            scope.spawn(move |inner| {
                inner.spawn(move |_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .expect("threads join");
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}

//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! The build environment has no crate registry, so this shim provides the
//! one type the workspace uses — [`Mutex`] with a non-poisoning `lock()` —
//! backed by `std::sync::Mutex`. A poisoned std mutex (a panic while the
//! lock was held) recovers the inner data, matching `parking_lot`'s
//! semantics of never poisoning.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// Mutual exclusion primitive; `lock()` returns the guard directly rather
/// than a `Result`, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

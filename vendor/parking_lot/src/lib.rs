//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! The build environment has no crate registry, so this shim provides the
//! types the workspace uses — [`Mutex`] and [`RwLock`] with non-poisoning
//! guards — backed by their `std::sync` counterparts. A poisoned std lock
//! (a panic while the lock was held) recovers the inner data, matching
//! `parking_lot`'s semantics of never poisoning.
//!
//! # The `sanitize` feature
//!
//! With `--features sanitize` every acquisition is instrumented with a
//! lockdep-style runtime checker (see [`sanitize`]):
//!
//! * **same-thread re-entrancy** — re-acquiring a lock the current thread
//!   already holds panics immediately instead of deadlocking (this
//!   includes re-entrant `read()`, which can deadlock against a waiting
//!   writer);
//! * **order inversion** — acquiring `B` while holding `A` records the
//!   edge `A → B` in a process-global order graph; a later acquisition
//!   that would close a cycle panics, naming the acquisition site of
//!   both conflicting edges;
//! * **watchdog** — a guard held longer than the configured budget
//!   (`GAPS_SANITIZE_WATCHDOG_MS` or [`sanitize::set_watchdog`]) panics
//!   at drop, naming the acquisition site; unset means disabled.
//!
//! Without the feature the wrappers compile down to the plain std locks.

#[cfg(feature = "sanitize")]
pub mod sanitize;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

/// Mutual exclusion primitive; `lock()` returns the guard directly rather
/// than a `Result`, like `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "sanitize")]
    id: sanitize::LockId,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "sanitize")]
            id: sanitize::next_lock_id(),
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "sanitize")]
        let token = sanitize::before_acquire(self.id, "Mutex::lock");
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard {
            #[cfg(feature = "sanitize")]
            _token: token.acquired(),
            inner,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("inner", &&self.inner)
            .finish()
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // Declared before `inner` so sanitizer bookkeeping is removed while
    // the lock is still held (never observes a window where the lock is
    // free but still recorded as held).
    #[cfg(feature = "sanitize")]
    _token: sanitize::HeldToken,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly rather
/// than `Result`s, like `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "sanitize")]
    id: sanitize::LockId,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "sanitize")]
            id: sanitize::next_lock_id(),
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until no writer holds the lock.
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "sanitize")]
        let token = sanitize::before_acquire(self.id, "RwLock::read");
        let inner = match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard {
            #[cfg(feature = "sanitize")]
            _token: token.acquired(),
            inner,
        }
    }

    /// Acquire exclusive write access, blocking until the lock is free.
    #[cfg_attr(feature = "sanitize", track_caller)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "sanitize")]
        let token = sanitize::before_acquire(self.id, "RwLock::write");
        let inner = match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard {
            #[cfg(feature = "sanitize")]
            _token: token.acquired(),
            inner,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("inner", &&self.inner)
            .finish()
    }
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "sanitize")]
    _token: sanitize::HeldToken,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "sanitize")]
    _token: sanitize::HeldToken,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7u32);
        {
            let a = l.read();
            assert_eq!(*a, 7);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn rwlock_get_mut_and_default() {
        let mut l = RwLock::<Vec<u32>>::default();
        l.get_mut().push(4);
        assert_eq!(*l.read(), vec![4]);
    }
}

//! Lockdep-style runtime sanitizer behind the `sanitize` cargo feature.
//!
//! Every instrumented lock gets a process-unique [`LockId`] at
//! construction. Acquisitions record, per thread, a stack of held locks
//! (id + `#[track_caller]` acquisition site + acquisition instant), and
//! feed a process-global *order graph*: acquiring `B` while holding `A`
//! inserts the directed edge `A → B` together with the first pair of
//! source sites that witnessed it. Before any acquisition the checker
//! panics — instead of deadlocking — when it observes:
//!
//! * **re-entrancy**: the current thread already holds the lock being
//!   acquired (includes re-entrant `RwLock::read`, which can deadlock
//!   against a queued writer);
//! * **order inversion**: the new edge `A → B` would close a cycle in
//!   the order graph (`B` already reaches `A`); the panic names the
//!   acquisition sites of both conflicting edges;
//! * **watchdog overrun** (at guard drop): the guard stayed alive
//!   longer than the configured budget.
//!
//! The watchdog budget comes from `GAPS_SANITIZE_WATCHDOG_MS` (read
//! once) or [`set_watchdog`]; unset/`None` disables it, so ordinary test
//! runs cannot flake on scheduler noise unless they opt in.
//!
//! All checks are skipped while the current thread is already
//! panicking, so sanitizer panics never escalate into double-panic
//! aborts during unwinding.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Process-unique identity of one instrumented lock instance.
pub type LockId = usize;

/// Allocate the id for a newly constructed lock.
pub(crate) fn next_lock_id() -> LockId {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

struct Held {
    id: LockId,
    op: &'static str,
    site: &'static Location<'static>,
    since: Instant,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// One first-witness order edge `from → to`: the sites where `from` was
/// held and `to` was acquired under it.
struct Edge {
    from_site: &'static Location<'static>,
    to_site: &'static Location<'static>,
}

type OrderGraph = HashMap<LockId, HashMap<LockId, Edge>>;

fn graph() -> &'static Mutex<OrderGraph> {
    static GRAPH: OnceLock<Mutex<OrderGraph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
}

/// `u64::MAX` = not yet initialised from the environment; `0` = disabled.
static WATCHDOG_MS: AtomicU64 = AtomicU64::new(u64::MAX);

fn watchdog_budget() -> Option<Duration> {
    let mut ms = WATCHDOG_MS.load(Ordering::Relaxed);
    if ms == u64::MAX {
        ms = std::env::var("GAPS_SANITIZE_WATCHDOG_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        WATCHDOG_MS.store(ms, Ordering::Relaxed);
    }
    if ms == 0 {
        None
    } else {
        Some(Duration::from_millis(ms))
    }
}

/// Set (or with `None`, disable) the guard-lifetime watchdog budget for
/// the whole process, overriding `GAPS_SANITIZE_WATCHDOG_MS`.
pub fn set_watchdog(budget: Option<Duration>) {
    let ms = budget.map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX - 1));
    WATCHDOG_MS.store(ms, Ordering::Relaxed);
}

/// Number of instrumented guards the current thread holds right now.
pub fn held_lock_count() -> usize {
    HELD.with(|h| h.borrow().len())
}

/// Acquisition site of the most recently acquired guard still held by
/// the current thread, rendered as `Op at file:line:col`.
pub fn newest_held_site() -> Option<String> {
    HELD.with(|h| {
        h.borrow()
            .last()
            .map(|held| format!("{} at {}", held.op, held.site))
    })
}

/// If `from` reaches `to` by following recorded order edges, return the
/// first hop of one witnessing path (`from → hop → … → to`).
fn path_first_hop(g: &OrderGraph, from: LockId, to: LockId) -> Option<LockId> {
    let mut seen = vec![from];
    let first_hops: Vec<LockId> = g.get(&from).map(|n| n.keys().copied().collect())?;
    for hop in first_hops {
        if hop == to {
            return Some(hop);
        }
        let mut stack = vec![hop];
        while let Some(n) = stack.pop() {
            if n == to {
                return Some(hop);
            }
            if seen.contains(&n) {
                continue;
            }
            seen.push(n);
            if let Some(next) = g.get(&n) {
                stack.extend(next.keys().copied());
            }
        }
    }
    None
}

/// Acquisition permit: checks ran, the lock may now be blocked on.
pub(crate) struct PendingAcquire {
    id: LockId,
    op: &'static str,
    site: &'static Location<'static>,
}

impl PendingAcquire {
    /// The lock is now held: push it on the thread's acquisition stack.
    pub(crate) fn acquired(self) -> HeldToken {
        HELD.with(|h| {
            h.borrow_mut().push(Held {
                id: self.id,
                op: self.op,
                site: self.site,
                since: Instant::now(),
            });
        });
        HeldToken { id: self.id }
    }
}

/// Run the re-entrancy and order-inversion checks for acquiring `id` at
/// the caller's site, *before* blocking on the underlying lock (a
/// would-deadlock acquisition must panic rather than hang).
#[track_caller]
pub(crate) fn before_acquire(id: LockId, op: &'static str) -> PendingAcquire {
    let site = Location::caller();
    if std::thread::panicking() {
        return PendingAcquire { id, op, site };
    }
    let held: Vec<(LockId, &'static str, &'static Location<'static>)> = HELD.with(|h| {
        h.borrow()
            .iter()
            .map(|held| (held.id, held.op, held.site))
            .collect()
    });
    if let Some(&(_, prev_op, prev_site)) = held.iter().find(|&&(hid, _, _)| hid == id) {
        panic!(
            "sanitize: same-thread re-entrant acquisition: {op} at {site} while the \
             thread already holds this lock ({prev_op} at {prev_site}); this deadlocks \
             without the sanitizer"
        );
    }
    let mut g = match graph().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut violation = None;
    for &(hid, hop, hsite) in &held {
        if let Some(first_hop) = path_first_hop(&g, id, hid) {
            // Name the recorded edge that starts the reverse path
            // (`id → first_hop → … → hid`); for a two-lock inversion
            // this is exactly the earlier opposite-order acquisition.
            let wedge = &g[&id][&first_hop];
            violation = Some(format!(
                "sanitize: lock-order inversion: {op} at {site} while holding {hop} at \
                 {hsite}, but the opposite order was established earlier (lock #{id} \
                 held at {} when the edge toward #{hid} was taken at {}); cyclic \
                 acquisition order can deadlock",
                wedge.from_site, wedge.to_site
            ));
            break;
        }
        g.entry(hid).or_default().entry(id).or_insert(Edge {
            from_site: hsite,
            to_site: site,
        });
    }
    drop(g);
    if let Some(msg) = violation {
        panic!("{msg}");
    }
    PendingAcquire { id, op, site }
}

/// RAII record of one held lock; popping it runs the watchdog check.
pub(crate) struct HeldToken {
    id: LockId,
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        let popped = HELD.with(|h| {
            let mut held = h.borrow_mut();
            let pos = held.iter().rposition(|held| held.id == self.id);
            pos.map(|p| held.remove(p))
        });
        if std::thread::panicking() {
            return;
        }
        let (Some(held), Some(budget)) = (popped, watchdog_budget()) else {
            return;
        };
        let alive = held.since.elapsed();
        if alive > budget {
            panic!(
                "sanitize: watchdog: guard from {} at {} stayed alive {alive:?} \
                 (budget {budget:?}); long-held guards serialize the pool",
                held.op, held.site
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::set_watchdog;
    use crate::{Mutex, RwLock};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    fn panic_message(r: Result<(), Box<dyn std::any::Any + Send>>) -> String {
        let err = r.expect_err("sanitizer must panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn reentrant_lock_panics_instead_of_deadlocking() {
        let m = Mutex::new(0u32);
        let _g = m.lock();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _g2 = m.lock();
        })));
        assert!(msg.contains("re-entrant"), "{msg}");
    }

    #[test]
    fn reentrant_read_panics() {
        let l = RwLock::new(0u32);
        let _g = l.read();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _g2 = l.read();
        })));
        assert!(msg.contains("re-entrant"), "{msg}");
    }

    #[test]
    fn order_inversion_panics_and_names_both_sites() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a -> b
        }
        let _gb = b.lock();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _ga = a.lock(); // b held, would close b -> a -> b
        })));
        assert!(msg.contains("lock-order inversion"), "{msg}");
        // Both ends of the earlier witness edge are named (this file).
        assert!(msg.matches("sanitize.rs").count() >= 3, "{msg}");
    }

    #[test]
    fn longer_inversion_cycle_is_caught() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        let _gc = c.lock();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _ga = a.lock(); // closes a -> b -> c -> a
        })));
        assert!(msg.contains("lock-order inversion"), "{msg}");
    }

    #[test]
    fn watchdog_flags_long_held_guard() {
        let m = Mutex::new(());
        set_watchdog(Some(Duration::from_millis(10)));
        let g = m.lock();
        std::thread::sleep(Duration::from_millis(50));
        let msg = panic_message(catch_unwind(AssertUnwindSafe(move || drop(g))));
        set_watchdog(None);
        assert!(msg.contains("watchdog"), "{msg}");
    }

    #[test]
    fn consistent_order_never_trips() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        assert_eq!(super::held_lock_count(), 0);
    }
}

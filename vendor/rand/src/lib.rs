//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this crate
//! implements the *exact* subset of the `rand 0.8` API that the
//! gap-scheduling workspace uses, with compatible signatures:
//!
//! * [`Rng::gen_range`] over integer `Range`/`RangeInclusive` and `Range<f64>`
//! * [`Rng::gen_bool`]
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`]
//! * [`seq::SliceRandom::shuffle`]
//!
//! All generators are deterministic given a seed (the workspace only ever
//! constructs `StdRng::seed_from_u64`), which keeps tests and workload
//! generation reproducible. The core generator is splitmix64, which is more
//! than adequate for workload synthesis and randomized-policy sampling.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly random 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, matching `rand`'s behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map a `u64` to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draw a single uniform sample. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer below `bound` by widening multiply (Lemire reduction).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {:?}..{:?}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo:?}..={hi:?}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range: empty range {:?}..{:?}",
            self.start,
            self.end
        );
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator with the same role as `rand::rngs::StdRng`:
    /// a seeded, reproducible source. Internally splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard a couple of outputs so nearby seeds decorrelate.
            rng.next_u64();
            rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (`SliceRandom`).

    use super::{below, Rng};

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffle the slice uniformly in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_both_endpoints_inclusive() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..=3 should appear");
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits} of 10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}

//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry, so this shim provides the
//! subset of the criterion 0.5 API the workspace's benches use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `criterion_group!`
//! with the `name/config/targets` form, and `criterion_main!` — with
//! source-compatible signatures. Instead of criterion's full statistical
//! machinery it times `sample_size` batches per benchmark and prints the
//! median, which keeps `cargo bench` useful for coarse comparisons while
//! the benches compile unchanged against the real crate later.

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Smoke-test mode flag, set by `criterion_main!` when the harness is
/// invoked as `cargo bench -- --test` (mirroring real criterion): every
/// benchmark routine runs exactly once with no warm-up, so CI can prove
/// the benches *execute* without paying for timings.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Enable or disable smoke-test mode (see [`is_test_mode`]).
pub fn set_test_mode(enabled: bool) {
    TEST_MODE.store(enabled, Ordering::Relaxed);
}

/// True when running under `cargo bench -- --test`.
pub fn is_test_mode() -> bool {
    TEST_MODE.load(Ordering::Relaxed)
}

/// Identifier for one benchmark case, e.g. `hopcroft_karp/400`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name plus a parameter, rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level benchmark driver; builder methods mirror criterion's.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, None, &id.id, |b| f(b));
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.criterion, Some(&self.name), &id.id, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.criterion, Some(&self.name), &id.id, |b| f(b));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    deadline: Instant,
    warm_up: Duration,
}

impl Bencher {
    /// Time `routine`, collecting up to `sample_size` samples within the
    /// measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() > self.deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(config: &Criterion, group: Option<&str>, id: &str, f: F) {
    let test_mode = is_test_mode();
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: if test_mode { 1 } else { config.sample_size },
        deadline: Instant::now() + config.measurement_time,
        warm_up: if test_mode {
            Duration::ZERO
        } else {
            config.warm_up_time
        },
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    if test_mode {
        println!("{label:<48} ok (test mode, 1 iteration)");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let best = bencher.samples[0];
    println!(
        "{label:<48} median {median:>12?}   best {best:>12?}   ({} samples)",
        bencher.samples.len()
    );
}

/// Identity function that defeats constant-folding, like criterion's.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group: both the `name/config/targets` form and the
/// positional `criterion_group!(benches, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        // Bench binaries never re-export the group fn; silence the
        // reachability lint at the expansion site, like upstream.
        #[allow(unreachable_pub)]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main()` running the listed groups. Recognizes criterion's
/// `--test` flag (`cargo bench -- --test`): benches execute once each
/// instead of being timed.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|a| a == "--test") {
                $crate::set_test_mode(true);
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        for &n in &[10u64, 100] {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        targets = sum_bench
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn positional_group_macro_compiles() {
        criterion_group!(quick, sum_bench);
        quick();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
